/**
 * @file
 * The unified machine-readable run report: one versioned JSON
 * document (`slacksim.run_report.v4`) merging the configuration, the
 * RunResult, the violation-forensics ledger, the adaptive decision
 * log, the degradation-ladder outcome, the fault-injection record and
 * the obs layer's own overhead counters. Emitted by runSimulation()
 * whenever --report-out is set, so every engine, bench and example
 * shares one writer and one schema (documented in DESIGN.md,
 * "Forensics & run report" and "Fault tolerance"; validated by
 * tests/report_schema_test).
 *
 * v1 -> v2: added `forensics.transitions[]` (+ dropped counter), the
 * top-level `degradation` and `faults` sections and `obs.io_errors`.
 * v2 -> v3: added the top-level `profile` section (host-time phase
 * attribution, per-worker breakdowns, hardware counters, verdict)
 * emitted by the --profile layer; `enabled=false` with empty arrays
 * when profiling was off.
 * v3 -> v4 (additive): top-level `job_id` — the serve correlation id
 * ("" for standalone runs) that joins the report to the daemon's
 * server_events.jsonl, the metrics CSV schema line and the per-job
 * trace filename — plus `generator.build` (git hash, compiler, build
 * type, obs/sanitize knobs from the generated util/build_info.hh) and
 * `forensics.job_id` mirroring the id into the ledger section.
 * v4 -> v5 (additive): top-level `trace` section — the distributed
 * trace identity (trace_id, span_id, parent_span_id as 16-hex
 * strings), the emitting pid and the per-process clock anchor
 * (wall_us / steady_ns / tsc, plus tsc_ghz calibration when the
 * profiler ran) that lets the fleet merger join this run to the
 * daemon's server_events.jsonl on one wall-epoch timeline; the
 * config.obs subobject gains trace_id / parent_span_id.
 */

#ifndef SLACKSIM_OBS_RUN_REPORT_HH
#define SLACKSIM_OBS_RUN_REPORT_HH

#include <iosfwd>

namespace slacksim {

struct SimConfig;
struct RunResult;

namespace obs {

/** The schema identifier emitted in every report. */
inline constexpr const char *runReportSchema = "slacksim.run_report.v5";

/** Write the full run report for @p result under @p config. */
void writeRunReport(std::ostream &os, const SimConfig &config,
                    const RunResult &result);

} // namespace obs
} // namespace slacksim

#endif // SLACKSIM_OBS_RUN_REPORT_HH
