/** @file Span-id minting and clock anchoring (see span.hh). */

#include "obs/span.hh"

#include <atomic>
#include <chrono>
#include <cstdio>

#include <unistd.h>

#include "obs/profiler.hh"

namespace slacksim::obs {

namespace {

/** splitmix64 finalizer: cheap, well-distributed avalanche mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
mintRaw()
{
    static std::atomic<std::uint64_t> counter{0};
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t seed =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now.time_since_epoch())
                .count()) ^
        (static_cast<std::uint64_t>(::getpid()) << 32) ^
        counter.fetch_add(1, std::memory_order_relaxed);
    return mix64(seed);
}

} // namespace

ClockAnchor
captureClockAnchor()
{
    ClockAnchor anchor;
    anchor.wallUs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    anchor.steadyNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    anchor.tsc = profTsc();
    anchor.pid = static_cast<std::uint32_t>(::getpid());
    return anchor;
}

std::string
mintTraceId()
{
    return spanIdHex(mintSpanId());
}

std::uint64_t
mintSpanId()
{
    std::uint64_t id = mintRaw();
    while (id == 0) // 0 is the "no span" sentinel everywhere
        id = mintRaw();
    return id;
}

std::string
spanIdHex(std::uint64_t span_id)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(span_id));
    return std::string(buf);
}

} // namespace slacksim::obs
