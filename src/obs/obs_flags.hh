/**
 * @file
 * Command-line plumbing for the observability subsystem, shared by
 * the examples and the bench harnesses: the --trace-out /
 * --metrics-out / --obs-buffer-kb / --obs-epoch / --report-out /
 * --watchdog-ms flag specs (for --help and unknown-flag rejection)
 * and the helper that applies them to an ObsConfig.
 */

#ifndef SLACKSIM_OBS_OBS_FLAGS_HH
#define SLACKSIM_OBS_OBS_FLAGS_HH

#include <vector>

#include "obs/obs_config.hh"
#include "util/options.hh"

namespace slacksim::obs {

/** @return the observability flag specs (help text included). */
const std::vector<OptionSpec> &obsOptionSpecs();

/** Apply any given observability flags to @p config. */
void applyObsOptions(const Options &opts, ObsConfig &config);

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_OBS_FLAGS_HH
