/**
 * @file
 * Observability flag plumbing implementation.
 */

#include "obs/obs_flags.hh"

namespace slacksim::obs {

const std::vector<OptionSpec> &
obsOptionSpecs()
{
    static const std::vector<OptionSpec> specs = {
        {"trace-out", "FILE",
         "write a Chrome-trace/Perfetto JSON of the run"},
        {"metrics-out", "FILE",
         "write the epoch metrics time series as CSV"},
        {"obs-buffer-kb", "KB",
         "per-thread trace ring size in KiB (default 1024)"},
        {"obs-epoch", "CYCLES",
         "metrics sampling period (default: adaptive epoch)"},
        {"report-out", "FILE",
         "write the unified slacksim.run_report.v4 JSON"},
        {"watchdog-ms", "MS",
         "stall watchdog threshold in wall ms (0 = off)"},
        {"profile", "",
         "attribute host time to phases; adds the run-report "
         "profile section"},
        {"profile-out", "FILE",
         "write a folded-stack flamegraph file (implies --profile)"},
        {"job-id", "ID",
         "correlation id stamped into every artifact (the job "
         "server sets job-<id>)"},
    };
    return specs;
}

void
applyObsOptions(const Options &opts, ObsConfig &config)
{
    config.traceOut = opts.get("trace-out", config.traceOut);
    config.metricsOut = opts.get("metrics-out", config.metricsOut);
    config.bufferKb = static_cast<std::uint32_t>(
        opts.getUint("obs-buffer-kb", config.bufferKb));
    config.metricsEpoch = opts.getUint("obs-epoch", config.metricsEpoch);
    config.reportOut = opts.get("report-out", config.reportOut);
    config.watchdogMs = opts.getUint("watchdog-ms", config.watchdogMs);
    config.profile = opts.getBool("profile", config.profile);
    config.profileOut = opts.get("profile-out", config.profileOut);
    if (!config.profileOut.empty())
        config.profile = true;
    config.jobId = opts.get("job-id", config.jobId);
}

} // namespace slacksim::obs
