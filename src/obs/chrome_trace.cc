/**
 * @file
 * Chrome-trace exporter implementation.
 */

#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

namespace slacksim::obs {

namespace {

/** Escape a string for a JSON literal (names are ASCII literals, but
 *  roles are caller-built and escaped defensively). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
phaseOf(TraceType type)
{
    switch (type) {
      case TraceType::Begin:
        return "B";
      case TraceType::End:
        return "E";
      case TraceType::Instant:
        return "i";
      case TraceType::Counter:
        return "C";
    }
    return "i";
}

/** Format wall ns as microseconds with sub-us precision. */
std::string
tsMicros(std::uint64_t wall_ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64,
                  wall_ns / 1000, wall_ns % 1000);
    return buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<ThreadTrace> &traces,
                 const ChromeTraceMeta &meta)
{
    const std::uint32_t pid = meta.pid;
    os << "{\"traceEvents\":[";
    bool first = true;
    if (!meta.processName.empty()) {
        os << "\n{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"name\":\"process_name\",\"args\":{"
              "\"name\":\""
           << jsonEscape(meta.processName) << "\"}}";
        first = false;
    }
    for (const auto &t : traces) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << t.tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(t.role) << "\"}}";
        os << ",\n{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << t.tid
           << ",\"name\":\"thread_sort_index\",\"args\":{"
              "\"sort_index\":"
           << t.tid << "}}";

        // Records are per-thread FIFO, but retroactive span begins
        // (traceSpanAt) carry wall stamps older than records pushed
        // before them; a stable sort restores timeline order without
        // disturbing same-timestamp emit order.
        std::vector<TraceRecord> recs = t.records;
        std::stable_sort(recs.begin(), recs.end(),
                         [](const TraceRecord &a, const TraceRecord &b) {
                             return a.wallNs < b.wallNs;
                         });
        for (const auto &rec : recs) {
            os << ",\n{\"ph\":\"" << phaseOf(rec.type)
               << "\",\"pid\":" << pid << ",\"tid\":" << t.tid
               << ",\"ts\":" << tsMicros(rec.wallNs) << ",\"name\":\""
               << jsonEscape(rec.name) << "\",\"cat\":\""
               << traceCategoryName(rec.category) << "\"";
            if (rec.type == TraceType::Instant)
                os << ",\"s\":\"t\"";
            if (rec.type == TraceType::Counter) {
                os << ",\"args\":{\"value\":" << rec.arg
                   << ",\"cycle\":" << rec.cycle << "}";
            } else {
                os << ",\"args\":{\"cycle\":" << rec.cycle
                   << ",\"arg\":" << rec.arg << ",\"arg2\":"
                   << rec.arg2 << "}";
            }
            os << "}";
        }
        if (t.dropped) {
            // Stamp the overflow marker at the track's end: drops are
            // a property of the whole track, and a ts of 0 would break
            // per-track timestamp monotonicity once the fleet merger
            // shifts this file onto the wall-epoch axis.
            const std::uint64_t last_ns =
                recs.empty() ? 0 : recs.back().wallNs;
            os << ",\n{\"ph\":\"i\",\"pid\":" << pid
               << ",\"tid\":" << t.tid << ",\"ts\":"
               << tsMicros(last_ns)
               << ",\"name\":\"trace-overflow\",\"cat\":"
                  "\"engine\",\"s\":\"t\",\"args\":{\"dropped\":"
               << t.dropped << "}}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"";
    // The object trace format allows a top-level metadata object; the
    // fleet merger reads the clock anchor and trace identity from it
    // to splice this file onto the wall-epoch timeline.
    if (!meta.traceId.empty()) {
        os << ",\"metadata\":{\"trace_id\":\""
           << jsonEscape(meta.traceId) << "\",\"span_id\":\"";
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(meta.spanId));
        os << hex << "\",\"parent_span_id\":\"";
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(
                          meta.parentSpanId));
        os << hex << "\",\"pid\":" << pid
           << ",\"clock_anchor\":{\"wall_us\":" << meta.wallAnchorUs
           << ",\"steady_ns\":" << meta.steadyAnchorNs
           << ",\"tsc\":" << meta.tscAnchor << "}}";
    }
    os << "}\n";
}

} // namespace slacksim::obs
