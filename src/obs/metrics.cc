/**
 * @file
 * MetricsSampler implementation.
 */

#include "obs/metrics.hh"

#include <ostream>

namespace slacksim::obs {

MetricsSampler::MetricsSampler(Tick epoch_cycles)
    : epochCycles_(epoch_cycles < 1 ? 1 : epoch_cycles)
{
}

void
MetricsSampler::push(Tick global, MetricsRow row)
{
    // Windowed per-epoch rates from the cumulative counters; the
    // first sample's window is the run so far.
    const Tick dt = global > lastGlobal_ ? global - lastGlobal_
                                         : (global > 0 ? global : 1);
    const std::uint64_t dbus =
        row.busViolations >= lastBusViolations_
            ? row.busViolations - lastBusViolations_
            : 0;
    const std::uint64_t dmap =
        row.mapViolations >= lastMapViolations_
            ? row.mapViolations - lastMapViolations_
            : 0;
    row.busViolRate = static_cast<double>(dbus) / dt;
    row.mapViolRate = static_cast<double>(dmap) / dt;
    lastBusViolations_ = row.busViolations;
    lastMapViolations_ = row.mapViolations;
    lastGlobal_ = global;
    nextSampleAt_ = global + epochCycles_;
    rows_.push_back(std::move(row));
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    const std::size_t cores =
        rows_.empty() ? 0 : rows_.front().coreLocal.size();
    os << "wall_ns,global_cycle,min_local,max_local,slack_spread,"
          "slack_bound,replay,bus_violations,map_violations,"
          "bus_viol_rate,map_viol_rate,bus_requests,"
          "bus_queueing_cycles,mgr_pending,checkpoints,rollbacks";
    for (std::size_t c = 0; c < cores; ++c)
        os << ",core" << c << "_local";
    os << "\n";
    for (const auto &r : rows_) {
        os << r.wallNs << "," << r.global << "," << r.minLocal << ","
           << r.maxLocal << ","
           << (r.maxLocal >= r.minLocal ? r.maxLocal - r.minLocal : 0)
           << "," << r.slackBound << "," << (r.replay ? 1 : 0) << ","
           << r.busViolations << "," << r.mapViolations << ","
           << r.busViolRate << "," << r.mapViolRate << ","
           << r.busRequests << "," << r.busQueueingCycles << ","
           << r.mgrPending << "," << r.checkpoints << ","
           << r.rollbacks;
        for (std::size_t c = 0; c < cores; ++c)
            os << "," << (c < r.coreLocal.size() ? r.coreLocal[c] : 0);
        os << "\n";
    }
}

} // namespace slacksim::obs
