/**
 * @file
 * MetricsSampler implementation.
 */

#include "obs/metrics.hh"

#include <cassert>
#include <ostream>
#include <string>
#include <vector>

namespace slacksim::obs {

namespace {

/** Header tokens must stay machine-parsable: lowercase, digits and
 *  underscores only (no separators, quotes or spaces that would need
 *  CSV escaping). Enforced on every emitted column so a future column
 *  can't silently break downstream plot scripts. */
bool
validColumnName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char ch : name) {
        const bool ok = (ch >= 'a' && ch <= 'z') ||
                        (ch >= '0' && ch <= '9') || ch == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

MetricsSampler::MetricsSampler(Tick epoch_cycles)
    : epochCycles_(epoch_cycles < 1 ? 1 : epoch_cycles)
{
}

void
MetricsSampler::push(Tick global, MetricsRow row)
{
    // Windowed per-epoch rates from the cumulative counters; the
    // first sample's window is the run so far.
    const Tick dt = global > lastGlobal_ ? global - lastGlobal_
                                         : (global > 0 ? global : 1);
    const std::uint64_t dbus =
        row.busViolations >= lastBusViolations_
            ? row.busViolations - lastBusViolations_
            : 0;
    const std::uint64_t dmap =
        row.mapViolations >= lastMapViolations_
            ? row.mapViolations - lastMapViolations_
            : 0;
    row.busViolRate = static_cast<double>(dbus) / dt;
    row.mapViolRate = static_cast<double>(dmap) / dt;
    lastBusViolations_ = row.busViolations;
    lastMapViolations_ = row.mapViolations;
    lastGlobal_ = global;
    nextSampleAt_ = global + epochCycles_;
    rows_.push_back(std::move(row));
}

void
MetricsSampler::writeCsv(std::ostream &os,
                         const std::string &jobId) const
{
    const std::size_t cores =
        rows_.empty() ? 0 : rows_.front().coreLocal.size();

    std::vector<std::string> columns = {
        "wall_ns", "global_cycle", "min_local", "max_local",
        "slack_spread", "slack_bound", "replay", "bus_violations",
        "map_violations", "bus_viol_rate", "map_viol_rate",
        "bus_requests", "bus_queueing_cycles", "mgr_pending",
        "checkpoints", "rollbacks"};
    for (std::size_t c = 0; c < cores; ++c) {
        const std::string n = std::to_string(c);
        columns.push_back("core" + n + "_local");
        columns.push_back("core" + n + "_lag");
        columns.push_back("core" + n + "_inq");
        columns.push_back("core" + n + "_outq");
    }

    // Schema comment first: parsers that key on column names skip
    // '#' lines; parsers that check the schema string get a stable
    // anchor that survives column reorders.
    os << "# schema=" << csvSchema << " columns=" << columns.size()
       << " rows=" << rows_.size();
    if (!jobId.empty())
        os << " job_id=" << jobId;
    os << "\n";
    for (std::size_t i = 0; i < columns.size(); ++i) {
        assert(validColumnName(columns[i]));
        if (!validColumnName(columns[i])) {
            // Release builds: sanitize in place rather than drop, so
            // the header stays aligned with the data columns.
            for (char &ch : columns[i]) {
                const bool ok = (ch >= 'a' && ch <= 'z') ||
                                (ch >= '0' && ch <= '9') || ch == '_';
                if (!ok)
                    ch = '_';
            }
            if (columns[i].empty())
                columns[i].push_back('_');
        }
        os << (i ? "," : "") << columns[i];
    }
    os << "\n";

    for (const auto &r : rows_) {
        os << r.wallNs << "," << r.global << "," << r.minLocal << ","
           << r.maxLocal << ","
           << (r.maxLocal >= r.minLocal ? r.maxLocal - r.minLocal : 0)
           << "," << r.slackBound << "," << (r.replay ? 1 : 0) << ","
           << r.busViolations << "," << r.mapViolations << ","
           << r.busViolRate << "," << r.mapViolRate << ","
           << r.busRequests << "," << r.busQueueingCycles << ","
           << r.mgrPending << "," << r.checkpoints << ","
           << r.rollbacks;
        for (std::size_t c = 0; c < cores; ++c) {
            const Tick local =
                c < r.coreLocal.size() ? r.coreLocal[c] : 0;
            // Slack lag: this core's drift above the slowest core —
            // the (myClock - minClock) series the adaptive analysis
            // plots (0 for the straggler itself).
            const Tick lag = local >= r.minLocal ? local - r.minLocal
                                                 : 0;
            os << "," << local << "," << lag << ","
               << (c < r.coreInQ.size() ? r.coreInQ[c] : 0) << ","
               << (c < r.coreOutQ.size() ? r.coreOutQ[c] : 0);
        }
        os << "\n";
    }
}

} // namespace slacksim::obs
