/**
 * @file
 * Trace record layout shared by the lock-free per-thread tracer and
 * the exporters. One record is one timeline event: the begin or end
 * of a span, an instant marker, or a counter sample. Records carry
 * both clocks of the "CMP on CMP" pair — host wall time (what the
 * engine threads really did) and simulated target cycles (where the
 * simulation was) — so the same buffer answers "why is this slow?"
 * and "when did the controller converge?".
 */

#ifndef SLACKSIM_OBS_TRACE_EVENT_HH
#define SLACKSIM_OBS_TRACE_EVENT_HH

#include <cstdint>

#include "util/types.hh"

namespace slacksim::obs {

/** What kind of timeline event a record is. */
enum class TraceType : std::uint8_t {
    Begin,   //!< span open (pairs with the next End of the same name)
    End,     //!< span close
    Instant, //!< point event (violation, rollback, adaptive decision)
    Counter, //!< sampled value (slack bound, queue depth)
};

/** Event category; becomes the Chrome-trace "cat" field. */
enum class TraceCategory : std::uint8_t {
    Engine,     //!< whole-run / manager-loop level
    Core,       //!< per-core run / park activity
    Manager,    //!< GQ pump + event service
    Bus,        //!< bus grants and bus violations
    Map,        //!< global-cache-map violations
    Adaptive,   //!< slack-throttling controller decisions
    Checkpoint, //!< snapshot / rollback / replay machinery
};

/** @return printable category name (Chrome-trace "cat"). */
const char *traceCategoryName(TraceCategory cat);

/**
 * One fixed-size trace record. @c name must point at a string with
 * static storage duration (a literal): records are copied across
 * threads without ownership.
 */
struct TraceRecord
{
    std::uint64_t wallNs = 0; //!< host ns since trace activation
    Tick cycle = 0;           //!< simulated target cycle
    const char *name = "";    //!< static event name
    std::int64_t arg = 0;     //!< event argument (value, count, ...)
    std::int64_t arg2 = 0;    //!< secondary argument (old value, ...)
    TraceType type = TraceType::Instant;
    TraceCategory category = TraceCategory::Engine;
};

} // namespace slacksim::obs

#endif // SLACKSIM_OBS_TRACE_EVENT_HH
