/**
 * @file
 * Tracer implementation.
 */

#include "obs/tracer.hh"

#include <algorithm>

#include "util/run_token.hh"

namespace slacksim::obs {

namespace {

/** The calling thread's binding to the current trace session. */
struct ThreadBinding
{
    TraceRing *ring = nullptr;
    std::uint64_t epoch = 0; //!< session the binding belongs to
};

thread_local ThreadBinding tlsBinding;

} // namespace

const char *
traceCategoryName(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::Engine:
        return "engine";
      case TraceCategory::Core:
        return "core";
      case TraceCategory::Manager:
        return "manager";
      case TraceCategory::Bus:
        return "bus";
      case TraceCategory::Map:
        return "map";
      case TraceCategory::Adaptive:
        return "adaptive";
      case TraceCategory::Checkpoint:
        return "checkpoint";
    }
    return "unknown";
}

bool
Tracer::activate(std::uint32_t ring_kb)
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    if (active())
        return false; // one trace session per process
    slots_.clear();
    ringKb_ = ring_kb < 1 ? 1 : ring_kb;
    ownerToken_ = currentRunToken();
    t0_ = std::chrono::steady_clock::now();
    epoch_.store(++nextEpoch_, std::memory_order_release);
    return true;
}

void
Tracer::deactivate()
{
    epoch_.store(0, std::memory_order_release);
    std::lock_guard<std::mutex> lock(registryMutex_);
    slots_.clear();
}

TraceRing *
Tracer::boundRing() const
{
    const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    if (e == 0 || tlsBinding.epoch != e)
        return nullptr;
    return tlsBinding.ring;
}

void
Tracer::registerThread(const std::string &role)
{
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e == 0)
        return;
    std::lock_guard<std::mutex> lock(registryMutex_);
    // Multi-tenant gate: a concurrent run that lost the activate()
    // race must not leak its threads into the owning run's trace.
    // Owner token 0 = the session was opened outside any run
    // (single-tenant tools, tests) and accepts every thread.
    if (ownerToken_ != 0 && currentRunToken() != ownerToken_)
        return;
    auto slot = std::make_unique<Slot>();
    slot->role = role;
    slot->tid = static_cast<std::uint32_t>(slots_.size());
    const std::size_t capacity =
        std::max<std::size_t>(64, std::size_t{ringKb_} * 1024 /
                                      sizeof(TraceRecord));
    slot->ring = std::make_unique<TraceRing>(capacity);
    tlsBinding.ring = slot->ring.get();
    tlsBinding.epoch = e;
    slots_.push_back(std::move(slot));
}

void
Tracer::unregisterThread()
{
    tlsBinding.ring = nullptr;
    tlsBinding.epoch = 0;
}

std::size_t
Tracer::collect()
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::size_t moved = 0;
    for (auto &slot : slots_)
        moved += slot->ring->drain(slot->collected);
    return moved;
}

std::vector<ThreadTrace>
Tracer::takeTraces()
{
    collect();
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::vector<ThreadTrace> out;
    out.reserve(slots_.size());
    for (auto &slot : slots_) {
        ThreadTrace t;
        t.role = slot->role;
        t.tid = slot->tid;
        t.dropped = slot->ring->dropped();
        t.records = std::move(slot->collected);
        slot->collected.clear();
        out.push_back(std::move(t));
    }
    return out;
}

std::uint64_t
Tracer::droppedTotal() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::uint64_t dropped = 0;
    for (const auto &slot : slots_)
        dropped += slot->ring->dropped();
    return dropped;
}

std::vector<std::pair<std::uint32_t, TraceRecord>>
mergeByCycle(const std::vector<ThreadTrace> &traces)
{
    std::vector<std::pair<std::uint32_t, TraceRecord>> merged;
    for (const auto &t : traces)
        for (const auto &rec : t.records)
            merged.emplace_back(t.tid, rec);
    // Per-thread order is already FIFO; a stable sort on (cycle, tid)
    // therefore keeps each thread's same-cycle records in emit order.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const auto &a, const auto &b) {
                         if (a.second.cycle != b.second.cycle)
                             return a.second.cycle < b.second.cycle;
                         return a.first < b.first;
                     });
    return merged;
}

} // namespace slacksim::obs
