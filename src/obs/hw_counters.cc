/**
 * @file
 * perf_event_open plumbing with the graceful-fallback contract
 * described in hw_counters.hh.
 */

#include "obs/hw_counters.hh"

#include <cerrno>
#include <cstring>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SLACKSIM_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SLACKSIM_HAVE_PERF_EVENT 0
#endif

namespace slacksim::obs {

#if SLACKSIM_HAVE_PERF_EVENT

namespace {

int
openCounter(std::uint64_t hw_id)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = hw_id;
    attr.disabled = 0;
    attr.inherit = 1; // count threads spawned after open()
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // pid=0, cpu=-1: this process (and, via inherit, its children),
    // on every CPU.
    return static_cast<int>(
        syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t
readCounter(int fd)
{
    std::uint64_t value = 0;
    if (fd >= 0 &&
        ::read(fd, &value, sizeof(value)) != sizeof(value)) {
        value = 0;
    }
    return value;
}

} // namespace

bool
HwCounters::open(bool force_unavailable)
{
    close();
    if (force_unavailable) {
        reason_ = "disabled (forced fallback)";
        return false;
    }
    static const std::uint64_t kIds[3] = {
        PERF_COUNT_HW_CPU_CYCLES,
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES,
    };
    for (std::size_t i = 0; i < 3; ++i) {
        fds_[i] = openCounter(kIds[i]);
        if (fds_[i] < 0) {
            const int err = errno;
            reason_ = std::string("perf_event_open failed: ") +
                      std::strerror(err);
            close();
            return false;
        }
    }
    available_ = true;
    reason_.clear();
    return true;
}

HwCounterTotals
HwCounters::read() const
{
    HwCounterTotals totals;
    totals.available = available_;
    totals.reason = reason_;
    if (!available_)
        return totals;
    totals.cycles = readCounter(fds_[0]);
    totals.instructions = readCounter(fds_[1]);
    totals.cacheMisses = readCounter(fds_[2]);
    return totals;
}

void
HwCounters::close()
{
    for (int &fd : fds_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    available_ = false;
}

#else // !SLACKSIM_HAVE_PERF_EVENT

bool
HwCounters::open(bool force_unavailable)
{
    close();
    reason_ = force_unavailable
                  ? "disabled (forced fallback)"
                  : "perf_event_open not available on this platform";
    return false;
}

HwCounterTotals
HwCounters::read() const
{
    HwCounterTotals totals;
    totals.available = false;
    totals.reason = reason_;
    return totals;
}

void
HwCounters::close()
{
    available_ = false;
}

#endif // SLACKSIM_HAVE_PERF_EVENT

} // namespace slacksim::obs
