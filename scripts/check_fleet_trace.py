#!/usr/bin/env python3
"""Validate a merged slacksim fleet trace (slacksim.fleet_trace.v1).

Checks, in order:
  1. The document is valid Chrome-trace JSON (object format) and the
     metadata block identifies the fleet-trace schema.
  2. Span discipline per (pid, tid) track: every E closes the most
     recently opened B of the same name, nothing ends before it
     begins, and no span leaks open past the end of the stream.
  3. Aligned timestamps are monotone (non-decreasing) per track in
     emission order -- the clock-domain alignment proof.
  4. Every non-metadata event carries join keys: args.job_id and
     args.trace_id.
  5. The trace ids join across the three sources of truth: the
     journal (server_events.jsonl), each job's run report (v5 trace
     section), and each spliced per-job Chrome trace file.

Usage: check_fleet_trace.py FLEET_TRACE.json OUT_ROOT
Exits nonzero with a diagnostic on the first violated invariant.
"""

import glob
import json
import os
import sys


def fail(msg):
    print(f"check_fleet_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} FLEET_TRACE.json OUT_ROOT")
    trace_path, out_root = sys.argv[1], sys.argv[2]

    doc = json.load(open(trace_path))
    meta = doc.get("metadata")
    if not isinstance(meta, dict):
        fail("no top-level metadata object")
    if meta.get("schema") != "slacksim.fleet_trace.v1":
        fail(f"bad schema: {meta.get('schema')!r}")
    server_pid = meta.get("server_pid")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    # A track that overflowed its ring is explicitly marked with a
    # trace-overflow instant: records were dropped at capture time, so
    # begin/end pairing cannot be enforced there. Every other track
    # gets the full discipline check.
    lossy = {(ev.get("pid"), ev.get("tid")) for ev in events
             if ev.get("name") == "trace-overflow"}

    # --- Span discipline + monotone timestamps + join keys --------
    stacks = {}  # (pid, tid) -> [(name, ts)]
    last_ts = {}  # (pid, tid) -> last seen ts
    trace_ids_by_job = {}  # job_id -> set of trace ids seen in args
    span_count = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        track = (ev.get("pid"), ev.get("tid"))
        ts = float(ev.get("ts", 0))
        name = ev.get("name", "")

        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            fail(f"event {i} ({name!r} on {track}): ts {ts} < "
                 f"previous {prev} -- track not monotone")
        last_ts[track] = ts

        args = ev.get("args")
        if not isinstance(args, dict):
            fail(f"event {i} ({name!r}): no args object")
        if "job_id" not in args:
            fail(f"event {i} ({name!r}): args.job_id missing")
        if "trace_id" not in args:
            fail(f"event {i} ({name!r}): args.trace_id missing")
        trace_ids_by_job.setdefault(args["job_id"], set()).add(
            args["trace_id"])

        if ph == "B":
            stacks.setdefault(track, []).append((name, ts))
            span_count += 1
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                if track in lossy:
                    continue  # its B was dropped at capture time
                fail(f"event {i} ({name!r} on {track}): E with no "
                     f"open span")
            if track in lossy and all(n != name for n, _ in stack):
                continue
            open_name, open_ts = stack.pop()
            if open_name != name:
                if track in lossy:
                    # Pop through spans whose E was dropped.
                    while stack and open_name != name:
                        open_name, open_ts = stack.pop()
                    if open_name != name:
                        continue
                else:
                    fail(f"event {i}: E {name!r} crosses open span "
                         f"{open_name!r} on {track}")
            if ts < open_ts:
                fail(f"span {name!r} on {track} ends at {ts} before "
                     f"its begin {open_ts}")
    for track, stack in stacks.items():
        if stack and track not in lossy:
            fail(f"track {track}: spans leaked open: "
                 f"{[n for n, _ in stack]}")
    if span_count == 0:
        fail("no duration spans at all")
    if lossy:
        print(f"check_fleet_trace: note: {len(lossy)} track(s) "
              f"marked trace-overflow; pairing relaxed there")

    # Acceptance shape: server, scheduler, supervisor and engine
    # categories all present for at least one traced job.
    cats = {ev.get("cat") for ev in events if ev.get("ph") == "B"}
    for want in ("server", "scheduler"):
        if want not in cats:
            fail(f"no {want!r}-category span in the merged trace")

    # --- Join keys across journal, reports, engine traces ----------
    journal_ids = {}  # job number -> trace_id
    journal = os.path.join(out_root, "server_events.jsonl")
    for line in open(journal):
        try:
            e = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a crashed generation
        if "job" in e and "trace_id" in e:
            journal_ids[e["job"]] = e["trace_id"]
    if not journal_ids:
        fail(f"{journal}: no trace_id on any event")

    for jid, tid_ in sorted(journal_ids.items()):
        merged = trace_ids_by_job.get(f"job-{jid}")
        if not merged:
            fail(f"job-{jid}: in journal but absent from the merged "
                 f"trace")
        if merged != {tid_}:
            fail(f"job-{jid}: journal trace_id {tid_!r} vs merged "
                 f"{sorted(merged)}")

    reports = 0
    for path in sorted(glob.glob(
            os.path.join(out_root, "job-*", "report.json"))):
        rep = json.load(open(path))
        jid = int(rep["job_id"].split("-")[1])
        trace = rep.get("trace")
        if not isinstance(trace, dict) or not trace.get("active"):
            continue  # job ran without an obs session trace identity
        reports += 1
        if trace["trace_id"] != journal_ids.get(jid):
            fail(f"{path}: report trace_id {trace['trace_id']!r} != "
                 f"journal {journal_ids.get(jid)!r}")

    spliced = 0
    for path in sorted(glob.glob(
            os.path.join(out_root, "job-*", "job-*.trace.json"))):
        engine = json.load(open(path))
        emeta = engine.get("metadata")
        if not isinstance(emeta, dict):
            continue  # pre-span-layer trace file
        jid = int(os.path.basename(path).split("-")[1].split(".")[0])
        spliced += 1
        if emeta.get("trace_id") != journal_ids.get(jid):
            fail(f"{path}: engine trace_id {emeta.get('trace_id')!r} "
                 f"!= journal {journal_ids.get(jid)!r}")
    if spliced and "engine" not in cats and not any(
            ev.get("cat") not in
            ("server", "scheduler", "supervisor") and ev.get("ph") == "B"
            for ev in events):
        fail("engine trace files exist but no engine-side span was "
             f"spliced into the merged timeline")

    print(f"check_fleet_trace: OK: {len(events)} events, "
          f"{span_count} spans, {len(trace_ids_by_job)} jobs, "
          f"{reports} report joins, {spliced} engine traces, "
          f"server pid {server_pid}")


if __name__ == "__main__":
    main()
