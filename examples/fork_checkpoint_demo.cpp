/**
 * @file
 * Demonstrates the paper's Section 5.1 checkpointing exactly as
 * described: fork()-based process checkpoints with waitpid()
 * suspension, _exit() rollback, and kill() release of obsolete
 * checkpoints — running a full speculative slack simulation on the
 * serial engine.
 *
 * Because completion propagates through the chain of suspended
 * checkpoint-holder processes, main() forks a driver process and
 * reads the final report over a pipe.
 *
 * Usage: fork_checkpoint_demo [--kernel=falseshare] [--uops=60000]
 *                             [--interval=5000] [--measure]
 */

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/run.hh"
#include "obs/obs_flags.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default falseshare)"},
        {"iters", "N", "workload iterations (default 4000)"},
        {"uops", "N", "committed micro-op budget (default 60000)"},
        {"target", "R", "adaptive target violation rate (default 0.01)"},
        {"interval", "CYCLES", "checkpoint interval (default 5000)"},
        {"measure", "", "measurement checkpoints only (no rollback)"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

void
driver(int fd, const Options &opts)
{
    SimConfig config;
    config.workload.kernel = opts.get("kernel", "falseshare");
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = opts.getUint("iters", 4000);
    config.engine.maxCommittedUops = opts.getUint("uops", 60000);
    config.engine.parallelHost = false; // fork() needs one thread
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate =
        opts.getDouble("target", 0.01);
    config.engine.adaptive.initialBound = 32;
    config.engine.checkpoint.mode = opts.has("measure")
                                        ? CheckpointMode::Measure
                                        : CheckpointMode::Speculative;
    config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    config.engine.checkpoint.interval = opts.getUint("interval", 5000);
    obs::applyObsOptions(opts, config.engine.obs);

    // Everything from here on may execute in a chain of forked
    // processes; the one that finishes writes the report.
    const RunResult r = runSimulation(config);

    std::ostringstream os;
    r.printSummary(os);
    os << "\nfork-checkpoint mechanics:\n"
       << "  process checkpoints taken : " << r.host.checkpointsTaken
       << "\n"
       << "  rollbacks (child _exit)   : " << r.host.rollbacks << "\n"
       << "  wasted simulated cycles   : " << r.host.wastedCycles
       << "\n"
       << "  fork() time total (s)     : " << r.host.checkpointSeconds
       << "\n";
    const std::string text = os.str();
    [[maybe_unused]] const ssize_t n =
        write(fd, text.c_str(), text.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("fork_checkpoint_demo: real fork() process "
                      "checkpoints on the serial engine",
                      flagSpecs());
    std::cout << "Running a speculative slack simulation with REAL "
                 "fork() process checkpoints...\n\n";
    std::cout.flush();

    int fds[2];
    if (pipe(fds) != 0) {
        std::perror("pipe");
        return 1;
    }
    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return 1;
    }
    if (pid == 0) {
        close(fds[0]);
        driver(fds[1], opts);
        _exit(0);
    }
    close(fds[1]);
    std::string report;
    char buf[1024];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0)
        report.append(buf, static_cast<std::size_t>(n));
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);

    std::cout << report;
    if (report.empty()) {
        std::cerr << "driver produced no report (status=" << status
                  << ")\n";
        return 1;
    }
    return 0;
}
