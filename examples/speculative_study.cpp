/**
 * @file
 * Speculative slack simulation study: runs the full checkpoint /
 * rollback / cycle-by-cycle-replay machinery (paper Section 5) on one
 * benchmark and contrasts three operating points:
 *   - measurement only (checkpoints, no rollback),
 *   - speculation on every violation,
 *   - speculation on cache-map violations only (the paper's proposed
 *     way to make speculation viable).
 *
 * Usage: speculative_study [--kernel=lu] [--uops=100000]
 *                          [--interval=20000] [--serial]
 */

#include <iostream>

#include "core/run.hh"
#include "core/spec_model.hh"
#include "obs/obs_flags.hh"
#include "stats/table.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default lu)"},
        {"uops", "N", "committed micro-op budget (default 100000)"},
        {"interval", "CYCLES", "checkpoint interval (default 20000)"},
        {"serial", "", "use the serial reference engine"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("speculative_study: checkpoint/rollback/replay "
                      "operating points",
                      flagSpecs());
    const std::string kernel = opts.get("kernel", "lu");
    const std::uint64_t uops = opts.getUint("uops", 100000);
    const Tick interval = opts.getUint("interval", 20000);
    const bool parallel = !opts.has("serial");

    auto base = [&](CheckpointMode mode) {
        SimConfig config = paperConfig(kernel, uops);
        config.engine.parallelHost = parallel;
        config.engine.scheme = SchemeKind::Adaptive;
        config.engine.adaptive.targetViolationRate = 1e-4;
        config.engine.adaptive.violationBand = 0.05;
        config.engine.checkpoint.mode = mode;
        config.engine.checkpoint.interval = interval;
        obs::applyObsOptions(opts, config.engine.obs);
        return config;
    };

    std::cout << "Speculative slack study: kernel=" << kernel
              << " interval=" << interval << " cycles\n\n";

    SimConfig cc = paperConfig(kernel, uops);
    cc.engine.parallelHost = parallel;
    cc.engine.scheme = SchemeKind::CycleByCycle;
    const RunResult r_cc = runSimulation(cc);

    const RunResult r_measure =
        runSimulation(base(CheckpointMode::Measure));

    SimConfig spec_all = base(CheckpointMode::Speculative);
    const RunResult r_all = runSimulation(spec_all);

    SimConfig spec_map = base(CheckpointMode::Speculative);
    spec_map.engine.checkpoint.rollbackOnBus = false;
    const RunResult r_map = runSimulation(spec_map);

    Table table("speculation operating points");
    table.setHeader({"config", "sim time (s)", "rollbacks",
                     "wasted cyc", "replay cyc", "ckpt bytes"});
    auto row = [&](const std::string &label, const RunResult &r) {
        table.cell(label)
            .cell(r.host.wallSeconds, 3)
            .cell(r.host.rollbacks)
            .cell(r.host.wastedCycles)
            .cell(r.host.replayCycles)
            .cell(r.host.checkpointBytes)
            .endRow();
    };
    row("cycle-by-cycle", r_cc);
    row("measure only", r_measure);
    row("rollback on all violations", r_all);
    row("rollback on map violations", r_map);
    table.print(std::cout);

    SpecModelInputs in;
    in.tCc = r_cc.host.wallSeconds;
    in.tCpt = r_measure.host.wallSeconds;
    in.fraction = r_measure.fractionIntervalsViolated();
    in.rollbackDistance = r_measure.meanFirstViolationDistance();
    in.interval = static_cast<double>(interval);
    std::cout << "\nanalytical model: F="
              << formatDouble(in.fraction * 100.0, 0) << "%  Dr="
              << formatDouble(in.rollbackDistance, 0) << " cycles  ->"
              << " Ts ~= "
              << formatDouble(speculativeTimeEstimate(in), 3)
              << " s (vs CC " << formatDouble(in.tCc, 3) << " s)\n";
    std::cout << "\nThe paper's conclusion: speculation only pays off "
                 "when rollbacks are rare — restrict the tracked "
                 "violation classes or lower the base violation rate.\n";
    return 0;
}
