/**
 * @file
 * A guided tour through the paper's ideas, each demonstrated live on
 * the simulator. Follows the paper's structure: slack simulation and
 * the gold standard (Sections 1-2), violation detection (Section 3),
 * adaptive slack (Section 4), speculative slack and its analytical
 * model (Section 5).
 *
 * Usage: paper_tour [--kernel=water] [--uops=50000] [--serial]
 */

#include <iostream>

#include "core/run.hh"
#include "core/spec_model.hh"
#include "obs/obs_flags.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

SimConfig
base(const Options &opts)
{
    SimConfig config;
    config.workload.kernel = opts.get("kernel", "water");
    config.workload.numThreads = config.target.numCores;
    config.engine.maxCommittedUops = opts.getUint("uops", 50000);
    config.engine.parallelHost = !opts.has("serial");
    obs::applyObsOptions(opts, config.engine.obs);
    return config;
}

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default water)"},
        {"uops", "N", "committed micro-op budget (default 50000)"},
        {"serial", "", "use the serial reference engine"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

void
section(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("paper_tour: the paper's ideas demonstrated live",
                      flagSpecs());
    std::cout << "SlackSim paper tour, workload '"
              << opts.get("kernel", "water") << "'\n";

    section("Sections 1-2: the gold standard vs slack");
    std::cout
        << "Cycle-by-cycle simulation synchronizes all core threads "
           "after every target\ncycle; slack simulation lets their "
           "clocks drift up to a bound.\n";
    SimConfig cc_config = base(opts);
    cc_config.engine.scheme = SchemeKind::CycleByCycle;
    const RunResult cc = runSimulation(cc_config);
    SimConfig s20_config = base(opts);
    s20_config.engine.scheme = SchemeKind::Bounded;
    s20_config.engine.slackBound = 20;
    const RunResult s20 = runSimulation(s20_config);
    std::cout << "  cycle-by-cycle : " << cc.host.wallSeconds
              << " s, exec " << cc.execCycles << " cycles, "
              << cc.violations.total() << " violations\n";
    std::cout << "  bounded(20)    : " << s20.host.wallSeconds
              << " s  ("
              << cc.host.wallSeconds / (s20.host.wallSeconds + 1e-12)
              << "x), exec " << s20.execCycles << " cycles ("
              << 100.0 *
                     (static_cast<double>(s20.execCycles) -
                      static_cast<double>(cc.execCycles)) /
                     cc.execCycles
              << "% error), " << s20.violations.total()
              << " violations\n";

    section("Section 3: violations are the accuracy proxy");
    std::cout
        << "A violation is a resource touched in a different order "
           "than in the target.\nThe bus is touched constantly (many, "
           "low-impact violations); the manager's\ncache status map "
           "rarely (few, high-impact):\n";
    std::cout << "  bounded(20): bus " << s20.violations.busViolations
              << " (" << s20.busViolationRate() * 100 << "%/cyc)  map "
              << s20.violations.mapViolations << " ("
              << s20.mapViolationRate() * 100 << "%/cyc)\n";

    section("Section 4: adaptive slack (slack throttling)");
    SimConfig ad_config = base(opts);
    ad_config.engine.scheme = SchemeKind::Adaptive;
    ad_config.engine.adaptive.targetViolationRate =
        s20.violationRate() / 4; // aim below what bounded(20) caused
    ad_config.engine.adaptive.violationBand = 0.05;
    const RunResult ad = runSimulation(ad_config);
    std::cout << "  target " << ad_config.engine.adaptive
                                     .targetViolationRate *
                                 100
              << "%/cyc -> measured " << ad.violationRate() * 100
              << "%/cyc, final bound " << ad.finalSlackBound << ", "
              << ad.host.slackAdjustments << " adjustments, "
              << ad.host.wallSeconds << " s (CC was "
              << cc.host.wallSeconds << " s)\n";

    section("Section 5: speculative slack (checkpoint + rollback)");
    SimConfig sp_config = base(opts);
    sp_config.engine.scheme = SchemeKind::Adaptive;
    sp_config.engine.adaptive.targetViolationRate = 1e-4;
    sp_config.engine.checkpoint.mode = CheckpointMode::Speculative;
    sp_config.engine.checkpoint.interval = 10000;
    const RunResult sp = runSimulation(sp_config);
    std::cout << "  rollback on every violation: "
              << sp.host.wallSeconds << " s, " << sp.host.rollbacks
              << " rollbacks, " << sp.host.wastedCycles
              << " wasted + " << sp.host.replayCycles
              << " replayed cycles\n";

    SimConfig sel_config = sp_config;
    sel_config.engine.checkpoint.rollbackOnBus = false;
    const RunResult sel = runSimulation(sel_config);
    std::cout << "  rollback on map violations only (the paper's "
                 "suggestion): "
              << sel.host.wallSeconds << " s, " << sel.host.rollbacks
              << " rollbacks\n";

    section("Section 5.2: the analytical model");
    SimConfig meas_config = sp_config;
    meas_config.engine.checkpoint.mode = CheckpointMode::Measure;
    const RunResult meas = runSimulation(meas_config);
    SpecModelInputs in;
    in.tCc = cc.host.wallSeconds;
    in.tCpt = meas.host.wallSeconds;
    in.fraction = meas.fractionIntervalsViolated();
    in.rollbackDistance = meas.meanFirstViolationDistance();
    in.interval = 10000;
    std::cout << "  Ts = (1-F)*Tcpt + F*Dr*Tcpt/I + F*Tcc with F="
              << in.fraction * 100 << "%, Dr=" << in.rollbackDistance
              << ":\n  modeled " << speculativeTimeEstimate(in)
              << " s vs measured " << sp.host.wallSeconds
              << " s vs CC " << cc.host.wallSeconds << " s\n";

    std::cout << "\nConclusion (the paper's): slack buys speed; "
                 "adaptive throttling bounds the\nerror; speculation "
                 "only pays once rollbacks are rare — e.g. by "
                 "tracking only\nthe rare, high-impact violation "
                 "classes.\n";
    return 0;
}
