/**
 * @file
 * observe — the observability subsystem's showcase: run one adaptive
 * slack simulation with measurement checkpoints and write both
 * observability artifacts:
 *   --trace-out=t.json   Chrome-trace/Perfetto timeline (load it in
 *                        chrome://tracing or https://ui.perfetto.dev)
 *   --metrics-out=m.csv  per-epoch metrics time series (plot the
 *                        slack_bound column to watch the controller)
 *   --report-out=r.json  unified slacksim.run_report.v4 document
 *                        (config + results + violation forensics +
 *                        adaptive decision log + fault/degradation
 *                        record)
 *
 * Also the chaos-testing entry point (README "Chaos testing"): the
 * --fault-spec / recovery-ladder flags inject deterministic faults
 * and every injection + demotion lands in the report.
 *
 * Usage:
 *   observe --trace-out=t.json --metrics-out=m.csv
 *           --report-out=r.json [--kernel=uniform] [--uops=60000]
 *           [--serial] [--speculative] [--watchdog-ms=MS]
 *           [--fault-spec=snapshot-corrupt@ckpt:2 ...]
 */

#include <iostream>

#include "core/run.hh"
#include "fault/fault_flags.hh"
#include "obs/obs_flags.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default uniform)"},
        {"uops", "N", "committed micro-op budget (default 60000)"},
        {"cores", "N", "simulated core count (default 8)"},
        {"serial", "", "use the serial reference engine"},
        {"speculative", "", "roll back on violations (else measure)"},
        {"interval", "CYCLES", "checkpoint interval (default 2000)"},
        {"target", "R", "adaptive target violation rate"},
        {"init", "N", "adaptive initial slack bound (default 64)"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    for (const auto &spec : fault::faultOptionSpecs())
        specs.push_back(spec);
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("observe: one instrumented run that writes the "
                      "trace timeline and the metrics time series",
                      flagSpecs());

    const std::string kernel = opts.get("kernel", "uniform");
    SimConfig config = paperConfig(kernel, opts.getUint("uops", 60000));
    if (opts.has("cores")) {
        config.target.numCores =
            static_cast<std::uint32_t>(opts.getUint("cores", 8));
        config.workload.numThreads = config.target.numCores;
    }
    if (kernel == "uniform") {
        config.workload.iters = 20000;
        config.workload.footprintBytes = 128 * 1024;
    }
    config.engine.parallelHost = !opts.has("serial");
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate =
        opts.getDouble("target", 1e-3);
    config.engine.adaptive.violationBand = 0.05;
    config.engine.adaptive.initialBound = opts.getUint("init", 64);
    config.engine.checkpoint.mode = opts.has("speculative")
                                        ? CheckpointMode::Speculative
                                        : CheckpointMode::Measure;
    config.engine.checkpoint.interval = opts.getUint("interval", 2000);
    obs::applyObsOptions(opts, config.engine.obs);
    fault::applyFaultOptions(opts, config.engine);

    if (!config.engine.obs.enabled()) {
        std::cout << "note: none of --trace-out / --metrics-out / "
                     "--report-out given; running without artifact "
                     "output.\n";
    }

    const RunResult r = runSimulation(config);
    r.printSummary(std::cout);

    // Forensics digest: where did the violations actually land?
    const obs::ViolationLedger &ledger = r.forensics.ledger;
    if (ledger.total() > 0) {
        std::cout << "\nviolation forensics (" << ledger.busTotal()
                  << " bus, " << ledger.mapTotal() << " map):\n";
        std::cout << "  top offender address buckets (64B-line "
                     "groups of 64):\n";
        for (const auto &o : ledger.topOffenders(5)) {
            std::cout << "    bucket 0x" << std::hex << o.bucket
                      << std::dec << ": " << o.bus << " bus + "
                      << o.map << " map\n";
        }
        std::cout << "  adaptive decisions recorded: "
                  << r.forensics.decisions.decisions().size() << "\n";
    }

    if (!config.engine.obs.traceOut.empty()) {
        std::cout << "\ntrace timeline : "
                  << config.engine.obs.traceOut
                  << "  (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!config.engine.obs.metricsOut.empty()) {
        std::cout << "metrics series : " << config.engine.obs.metricsOut
                  << "  (CSV; plot global_cycle vs slack_bound)\n";
    }
    if (!config.engine.obs.reportOut.empty()) {
        std::cout << "run report     : " << config.engine.obs.reportOut
                  << "  (JSON; jq .forensics.violations for the "
                     "attribution tables)\n";
    }
    return 0;
}
