/**
 * @file
 * scheme_explorer — a small CLI around the whole library: run any
 * workload kernel under any synchronization scheme with full control
 * over the knobs, and print the detailed run summary. Handy for
 * reproducing a single cell of any table in the paper.
 *
 * Usage examples:
 *   scheme_explorer --kernel=barnes --scheme=cc --uops=50000
 *   scheme_explorer --kernel=lu --scheme=bounded --slack=25
 *   scheme_explorer --kernel=water --scheme=adaptive --target=0.0001 \
 *                   --band=0.05 --checkpoint=measure --interval=10000
 *   scheme_explorer --kernel=uniform --scheme=adaptive \
 *                   --checkpoint=speculative --interval=5000 --serial
 *   scheme_explorer --list
 */

#include <iostream>

#include "core/run.hh"
#include "obs/obs_flags.hh"
#include "util/options.hh"
#include "workload/kernels.hh"

using namespace slacksim;

namespace {

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"list", "", "list workload kernels and exit"},
        {"kernel", "NAME", "workload (default fft)"},
        {"scheme", "S", "cc|quantum|bounded|unbounded|adaptive|lax-p2p"},
        {"slack", "N", "bounded-scheme slack bound (default 10)"},
        {"quantum", "N", "quantum-scheme barrier period (default 8)"},
        {"target", "R", "adaptive target violation rate (default 1e-4)"},
        {"band", "B", "adaptive violation band (default 0.05)"},
        {"epoch", "N", "adaptive epoch cycles (default 1000)"},
        {"init", "N", "adaptive initial bound (default 8)"},
        {"checkpoint", "M", "off|measure|speculative"},
        {"checkpoint-tech", "T", "memory|fork (fork: serial only)"},
        {"p2p-period", "N", "lax-p2p reshuffle period (default 1000)"},
        {"clusters", "N", "hierarchical manager relay count"},
        {"interval", "N", "checkpoint interval cycles (default 50000)"},
        {"no-bus-rollback", "", "roll back on map violations only"},
        {"uops", "N", "stop after N committed uops (default 100000)"},
        {"cores", "N", "target cores (= workload threads, default 8)"},
        {"serial", "", "single-threaded host engine"},
        {"protocol", "P", "mesi|msi coherence protocol"},
        {"seed", "N", "workload generation seed (default 42)"},
        {"grain", "N", "workload compute grain (default 1)"},
        {"iters", "N", "workload iteration override"},
        {"fft-points", "N", "fft input size override"},
        {"bodies", "N", "barnes body count override"},
        {"matrix-n", "N", "lu matrix size override"},
        {"molecules", "N", "water molecule count override"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("scheme_explorer: run any kernel under any "
                      "scheme with full knob control",
                      flagSpecs());

    if (opts.has("list")) {
        std::cout << "workload kernels:\n";
        for (const auto &name : workloadNames())
            std::cout << "  " << name << "\n";
        return 0;
    }

    SimConfig config;
    config.workload.kernel = opts.get("kernel", "fft");
    config.target.numCores =
        static_cast<std::uint32_t>(opts.getUint("cores", 8));
    config.workload.numThreads = config.target.numCores;
    config.workload.seed = opts.getUint("seed", 42);
    config.workload.computeGrain =
        static_cast<std::uint32_t>(opts.getUint("grain", 1));
    config.workload.iters = opts.getUint("iters", 0);
    config.workload.fftPoints = opts.getUint("fft-points", 0);
    config.workload.bodies = opts.getUint("bodies", 0);
    config.workload.matrixN = opts.getUint("matrix-n", 0);
    config.workload.molecules = opts.getUint("molecules", 0);

    config.engine.scheme = parseScheme(opts.get("scheme", "bounded"));
    config.engine.slackBound = opts.getUint("slack", 10);
    config.engine.quantum = opts.getUint("quantum", 8);
    config.engine.adaptive.targetViolationRate =
        opts.getDouble("target", 1e-4);
    config.engine.adaptive.violationBand = opts.getDouble("band", 0.05);
    config.engine.adaptive.epochCycles = opts.getUint("epoch", 1000);
    config.engine.adaptive.initialBound = opts.getUint("init", 8);
    config.engine.maxCommittedUops = opts.getUint("uops", 100000);
    config.engine.parallelHost = !opts.has("serial");

    const std::string ckpt = opts.get("checkpoint", "off");
    if (ckpt == "measure")
        config.engine.checkpoint.mode = CheckpointMode::Measure;
    else if (ckpt == "speculative")
        config.engine.checkpoint.mode = CheckpointMode::Speculative;
    else if (ckpt != "off")
        SLACKSIM_FATAL("--checkpoint expects off|measure|speculative");
    config.engine.checkpoint.interval = opts.getUint("interval", 50000);
    config.engine.checkpoint.rollbackOnBus =
        !opts.has("no-bus-rollback");
    const std::string tech = opts.get("checkpoint-tech", "memory");
    if (tech == "fork")
        config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    else if (tech != "memory")
        SLACKSIM_FATAL("--checkpoint-tech expects memory|fork");
    config.engine.p2pShufflePeriod = opts.getUint("p2p-period", 1000);
    config.engine.managerClusters =
        static_cast<std::uint32_t>(opts.getUint("clusters", 0));
    const std::string protocol = opts.get("protocol", "mesi");
    if (protocol == "msi")
        config.target.protocol = CoherenceProtocol::MSI;
    else if (protocol != "mesi")
        SLACKSIM_FATAL("--protocol expects mesi|msi");
    obs::applyObsOptions(opts, config.engine.obs);

    const RunResult result = runSimulation(config);
    result.printSummary(std::cout);
    return 0;
}
