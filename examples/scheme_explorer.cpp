/**
 * @file
 * scheme_explorer — a small CLI around the whole library: run any
 * workload kernel under any synchronization scheme with full control
 * over the knobs, and print the detailed run summary. Handy for
 * reproducing a single cell of any table in the paper.
 *
 * Usage examples:
 *   scheme_explorer --kernel=barnes --scheme=cc --uops=50000
 *   scheme_explorer --kernel=lu --scheme=bounded --slack=25
 *   scheme_explorer --kernel=water --scheme=adaptive --target=0.0001 \
 *                   --band=0.05 --checkpoint=measure --interval=10000
 *   scheme_explorer --kernel=uniform --scheme=adaptive \
 *                   --checkpoint=speculative --interval=5000 --serial
 *   scheme_explorer --list
 */

#include <iostream>

#include "core/run.hh"
#include "util/options.hh"
#include "workload/kernels.hh"

using namespace slacksim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    if (opts.has("help")) {
        std::cout
            << "scheme_explorer options:\n"
               "  --list                 list workload kernels\n"
               "  --kernel=NAME          workload (default fft)\n"
               "  --scheme=S             cc|quantum|bounded|unbounded|"
               "adaptive\n"
               "  --slack=N --quantum=N  scheme parameters\n"
               "  --target=R --band=B    adaptive controller\n"
               "  --epoch=N --init=N     adaptive controller\n"
               "  --checkpoint=M         off|measure|speculative\n"
               "  --checkpoint-tech=T    memory|fork (fork: serial "
               "only)\n"
               "  --p2p-period=N         lax-p2p reshuffle period\n"
               "  --clusters=N           hierarchical manager relays\n"
               "  --interval=N           checkpoint interval (cycles)\n"
               "  --no-bus-rollback      roll back on map violations "
               "only\n"
               "  --uops=N               stop after N committed uops\n"
               "  --cores=N              target cores (= workload "
               "threads)\n"
               "  --serial               single-threaded host engine\n"
               "  --protocol=P           mesi|msi coherence protocol\n"
               "  --seed=N --grain=N     workload generation knobs\n";
        return 0;
    }
    if (opts.has("list")) {
        std::cout << "workload kernels:\n";
        for (const auto &name : workloadNames())
            std::cout << "  " << name << "\n";
        return 0;
    }

    SimConfig config;
    config.workload.kernel = opts.get("kernel", "fft");
    config.target.numCores =
        static_cast<std::uint32_t>(opts.getUint("cores", 8));
    config.workload.numThreads = config.target.numCores;
    config.workload.seed = opts.getUint("seed", 42);
    config.workload.computeGrain =
        static_cast<std::uint32_t>(opts.getUint("grain", 1));
    config.workload.iters = opts.getUint("iters", 0);
    config.workload.fftPoints = opts.getUint("fft-points", 0);
    config.workload.bodies = opts.getUint("bodies", 0);
    config.workload.matrixN = opts.getUint("matrix-n", 0);
    config.workload.molecules = opts.getUint("molecules", 0);

    config.engine.scheme = parseScheme(opts.get("scheme", "bounded"));
    config.engine.slackBound = opts.getUint("slack", 10);
    config.engine.quantum = opts.getUint("quantum", 8);
    config.engine.adaptive.targetViolationRate =
        opts.getDouble("target", 1e-4);
    config.engine.adaptive.violationBand = opts.getDouble("band", 0.05);
    config.engine.adaptive.epochCycles = opts.getUint("epoch", 1000);
    config.engine.adaptive.initialBound = opts.getUint("init", 8);
    config.engine.maxCommittedUops = opts.getUint("uops", 100000);
    config.engine.parallelHost = !opts.has("serial");

    const std::string ckpt = opts.get("checkpoint", "off");
    if (ckpt == "measure")
        config.engine.checkpoint.mode = CheckpointMode::Measure;
    else if (ckpt == "speculative")
        config.engine.checkpoint.mode = CheckpointMode::Speculative;
    else if (ckpt != "off")
        SLACKSIM_FATAL("--checkpoint expects off|measure|speculative");
    config.engine.checkpoint.interval = opts.getUint("interval", 50000);
    config.engine.checkpoint.rollbackOnBus =
        !opts.has("no-bus-rollback");
    const std::string tech = opts.get("checkpoint-tech", "memory");
    if (tech == "fork")
        config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    else if (tech != "memory")
        SLACKSIM_FATAL("--checkpoint-tech expects memory|fork");
    config.engine.p2pShufflePeriod = opts.getUint("p2p-period", 1000);
    config.engine.managerClusters =
        static_cast<std::uint32_t>(opts.getUint("clusters", 0));
    const std::string protocol = opts.get("protocol", "mesi");
    if (protocol == "msi")
        config.target.protocol = CoherenceProtocol::MSI;
    else if (protocol != "mesi")
        SLACKSIM_FATAL("--protocol expects mesi|msi");

    const RunResult result = runSimulation(config);
    result.printSummary(std::cout);
    return 0;
}
