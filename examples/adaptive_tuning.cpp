/**
 * @file
 * Adaptive-slack tuning walkthrough: shows how the feedback
 * controller's knobs (target violation rate, violation band, epoch,
 * initial bound) shape the achieved rate, the final bound and the
 * wall-clock cost — the trade-off space of paper Section 4.
 *
 * Usage: adaptive_tuning [--kernel=water] [--uops=80000] [--serial]
 */

#include <iostream>

#include "core/run.hh"
#include "obs/obs_flags.hh"
#include "stats/table.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

const Options *gOpts = nullptr;

RunResult
runAdaptive(const std::string &kernel, std::uint64_t uops,
            bool parallel, double target, double band, Tick epoch,
            Tick initial)
{
    SimConfig config = paperConfig(kernel, uops);
    config.engine.parallelHost = parallel;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = target;
    config.engine.adaptive.violationBand = band;
    config.engine.adaptive.epochCycles = epoch;
    config.engine.adaptive.initialBound = initial;
    obs::applyObsOptions(*gOpts, config.engine.obs);
    return runSimulation(config);
}

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default water)"},
        {"uops", "N", "committed micro-op budget (default 80000)"},
        {"serial", "", "use the serial reference engine"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("adaptive_tuning: feedback controller knobs",
                      flagSpecs());
    gOpts = &opts;
    const std::string kernel = opts.get("kernel", "water");
    const std::uint64_t uops = opts.getUint("uops", 80000);
    const bool parallel = !opts.has("serial");

    std::cout << "Adaptive slack tuning on '" << kernel << "'\n\n";

    // 1. Sweep the target violation rate.
    Table targets("1. target rate sweep (band 5%, epoch 1k)");
    targets.setHeader({"target %/cyc", "achieved %/cyc", "final bound",
                       "adjustments", "sim time (s)"});
    for (const double target : {0.0001, 0.0005, 0.002, 0.01}) {
        const RunResult r = runAdaptive(kernel, uops, parallel, target,
                                        0.05, 1000, 8);
        targets.cell(formatDouble(target * 100.0, 3))
            .cell(formatDouble(r.violationRate() * 100.0, 4))
            .cell(r.finalSlackBound)
            .cell(r.host.slackAdjustments)
            .cell(r.host.wallSeconds, 3)
            .endRow();
    }
    targets.print(std::cout);
    std::cout << "\n";

    // 2. Sweep the violation band at a fixed target.
    Table bands("2. violation band sweep (target 0.05%)");
    bands.setHeader({"band", "achieved %/cyc", "adjustments",
                     "sim time (s)"});
    for (const double band : {0.0, 0.05, 0.20, 0.50}) {
        const RunResult r = runAdaptive(kernel, uops, parallel, 5e-4,
                                        band, 1000, 8);
        bands.cell(formatDouble(band * 100.0, 0) + "%")
            .cell(formatDouble(r.violationRate() * 100.0, 4))
            .cell(r.host.slackAdjustments)
            .cell(r.host.wallSeconds, 3)
            .endRow();
    }
    bands.print(std::cout);
    std::cout << "\n";

    // 3. Initial bound barely matters once the controller converges.
    Table inits("3. initial bound sweep (target 0.05%, band 5%)");
    inits.setHeader({"initial bound", "final bound",
                     "achieved %/cyc"});
    for (const Tick initial : {1u, 8u, 64u, 512u}) {
        const RunResult r = runAdaptive(kernel, uops, parallel, 5e-4,
                                        0.05, 1000, initial);
        inits.cell(initial)
            .cell(r.finalSlackBound)
            .cell(formatDouble(r.violationRate() * 100.0, 4))
            .endRow();
    }
    inits.print(std::cout);

    std::cout << "\nTakeaway: the controller holds the violation rate "
                 "near the target by throttling the bound; wider bands "
                 "mean fewer adjustments (cheaper), looser control.\n";
    return 0;
}
