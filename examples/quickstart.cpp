/**
 * @file
 * Quickstart: simulate the paper's 8-core CMP running the FFT kernel
 * under a few slack schemes and print what happens to speed and
 * violations.
 *
 * Usage:
 *   quickstart [--kernel=fft] [--uops=400000] [--serial]
 */

#include <iostream>

#include "core/run.hh"
#include "obs/obs_flags.hh"
#include "util/options.hh"

using namespace slacksim;

namespace {

std::vector<OptionSpec>
flagSpecs()
{
    std::vector<OptionSpec> specs = {
        {"kernel", "NAME", "workload kernel (default fft)"},
        {"uops", "N", "committed micro-op budget (default 400000)"},
        {"serial", "", "use the serial reference engine"},
    };
    for (const auto &spec : obs::obsOptionSpecs())
        specs.push_back(spec);
    return specs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown("quickstart: slack schemes on one kernel",
                      flagSpecs());
    const std::string kernel = opts.get("kernel", "fft");
    const std::uint64_t uops = opts.getUint("uops", 400000);
    const bool parallel = !opts.has("serial");

    std::cout << "SlackSim quickstart: kernel=" << kernel
              << " uop-budget=" << uops
              << " host=" << (parallel ? "parallel" : "serial")
              << "\n\n";

    // 1. Cycle-by-cycle: the accuracy gold standard.
    SimConfig cc = paperConfig(kernel, uops);
    cc.engine.parallelHost = parallel;
    cc.engine.scheme = SchemeKind::CycleByCycle;
    // The later configs copy from `cc`, so every run honours the
    // observability flags; the files end up describing the last run.
    obs::applyObsOptions(opts, cc.engine.obs);
    const RunResult r_cc = runSimulation(cc);
    r_cc.printSummary(std::cout);
    std::cout << "\n";

    // 2. Bounded slack: cores may drift up to 10 cycles apart.
    SimConfig bounded = cc;
    bounded.engine.scheme = SchemeKind::Bounded;
    bounded.engine.slackBound = 10;
    const RunResult r_b = runSimulation(bounded);
    r_b.printSummary(std::cout);
    std::cout << "\n";

    // 3. Adaptive slack: hold the violation rate at 0.01%.
    SimConfig adaptive = cc;
    adaptive.engine.scheme = SchemeKind::Adaptive;
    adaptive.engine.adaptive.targetViolationRate = 1e-4;
    adaptive.engine.adaptive.violationBand = 0.05;
    const RunResult r_a = runSimulation(adaptive);
    r_a.printSummary(std::cout);
    std::cout << "\n";

    const double err_b =
        r_cc.execCycles
            ? 100.0 *
                  (static_cast<double>(r_b.execCycles) -
                   static_cast<double>(r_cc.execCycles)) /
                  static_cast<double>(r_cc.execCycles)
            : 0.0;
    const double err_a =
        r_cc.execCycles
            ? 100.0 *
                  (static_cast<double>(r_a.execCycles) -
                   static_cast<double>(r_cc.execCycles)) /
                  static_cast<double>(r_cc.execCycles)
            : 0.0;

    std::cout << "speedup (wall clock) vs cycle-by-cycle:\n"
              << "  bounded(10): " << r_cc.host.wallSeconds /
                     (r_b.host.wallSeconds > 0 ? r_b.host.wallSeconds
                                               : 1e-9)
              << "x   exec-time error " << err_b << "%\n"
              << "  adaptive   : " << r_cc.host.wallSeconds /
                     (r_a.host.wallSeconds > 0 ? r_a.host.wallSeconds
                                               : 1e-9)
              << "x   exec-time error " << err_a << "%\n";
    return 0;
}
