/**
 * @file
 * Characterizes every registered workload kernel — operation mix,
 * footprint, sharing degree, balance — the information the paper's
 * Table 1 summarizes about its benchmarks. Useful when adding new
 * kernels or explaining why a given workload stresses the slack
 * machinery (high sharing -> bus traffic -> violations).
 *
 * Usage: workload_report [--kernel=NAME] [--threads=8] [--paper-scale]
 */

#include <iostream>

#include "util/options.hh"
#include "workload/kernels.hh"
#include "workload/trace_stats.hh"

using namespace slacksim;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    opts.enforceKnown(
        "workload_report: characterize the workload kernels",
        {{"kernel", "NAME", "report only this kernel"},
         {"threads", "N", "worker thread count (default 8)"},
         {"paper-scale", "", "use the paper's full input sets"}});
    const unsigned threads =
        static_cast<unsigned>(opts.getUint("threads", 8));

    std::vector<std::string> kernels;
    if (opts.has("kernel"))
        kernels.push_back(opts.get("kernel"));
    else
        kernels = workloadNames();

    std::cout << "Workload characterization (" << threads
              << " threads";
    if (opts.has("paper-scale"))
        std::cout << ", paper input sets";
    std::cout << ")\n\n";

    for (const auto &kernel : kernels) {
        WorkloadParams params;
        params.kernel = kernel;
        params.numThreads = threads;
        if (!opts.has("paper-scale")) {
            // Scaled-down inputs so the report is instant.
            params.bodies = 256;
            params.timesteps = 1;
            params.fftPoints = 4096;
            params.matrixN = 64;
            params.blockB = 8;
            params.molecules = 64;
            params.iters = 1000;
            params.footprintBytes = 128 * 1024;
        }
        const Workload w = makeWorkload(params);
        printWorkloadStats(std::cout, kernel, analyzeWorkload(w));
        std::cout << "\n";
    }

    std::cout << "Reading the numbers: a high shared-line fraction "
                 "with r/w sharing feeds the\nsnooping bus and the "
                 "cache map — exactly the state whose out-of-order\n"
                 "access the slack machinery must detect (bus and map "
                 "violations).\n";
    return 0;
}
