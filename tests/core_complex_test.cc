/**
 * @file
 * Tests for the CoreComplex idle-skip machinery: an inert core (all
 * in-flight work blocked on inbound messages) must jump its clock to
 * the next relevant time instead of burning one host step per stall
 * cycle, clamp at the pacing limit, and report WaitInbound when
 * free-running with nothing to do.
 */

#include <gtest/gtest.h>

#include "cache/mesi.hh"
#include "core/core_complex.hh"
#include "workload/trace.hh"

using namespace slacksim;

namespace {

SimConfig
oneCoreConfig()
{
    SimConfig config;
    config.target.numCores = 1;
    config.workload.numThreads = 1;
    return config;
}

/** Trace: a single missing load, then End. */
TraceProgram
singleLoadTrace()
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.load(0x100000, 0);
    b.end();
    return prog;
}

BusMsg
fill(Addr line, Tick ts, CacheKind cache = CacheKind::Data)
{
    BusMsg m;
    m.type = MsgType::Fill;
    m.addr = line;
    m.ts = ts;
    m.grantState = static_cast<std::uint8_t>(MesiState::Exclusive);
    m.cache = cache;
    return m;
}

/**
 * Single-step until the core's data GetS is outstanding and the core
 * is inert: instruction-fetch misses are answered inline, the data
 * miss is left pending. @return data requests seen.
 */
std::size_t
runUntilInert(CoreComplex &cc, int max_steps = 100)
{
    std::size_t data_requests = 0;
    BusMsg msg;
    for (int i = 0; i < max_steps; ++i) {
        cc.cycle(cc.localTime()); // single-step pacing
        while (cc.outQ().pop(msg)) {
            if (msg.cache == CacheKind::Instr)
                cc.inQ().push(fill(msg.addr, msg.ts + 2,
                                   CacheKind::Instr));
            else
                ++data_requests;
        }
        if (data_requests > 0 && i > 20)
            break;
    }
    return data_requests;
}

} // namespace

TEST(CoreComplexSkip, JumpsToInqHeadTimestamp)
{
    const SimConfig config = oneCoreConfig();
    const TraceProgram prog = singleLoadTrace();
    CoreComplex cc(config, 0, &prog, 0x10000);
    const std::size_t requests = runUntilInert(cc);
    ASSERT_GE(requests, 1u); // the data GetS is outstanding

    const Tick before = cc.localTime();
    ASSERT_TRUE(cc.inQ().push(fill(0x100000, 500)));
    const auto outcome = cc.cycle(10000);
    EXPECT_EQ(outcome, CoreComplex::CycleOutcome::Progress);
    // The inert core must jump straight to the fill's timestamp.
    EXPECT_EQ(cc.localTime(), 500u);
    EXPECT_EQ(cc.stats().idleCycles, 500u - before - 1);

    // The next cycle applies the fill and the load completes.
    cc.cycle(10000);
    cc.cycle(10000);
    cc.cycle(10000);
    EXPECT_TRUE(cc.finished());
}

TEST(CoreComplexSkip, ClampsToPacingLimit)
{
    const SimConfig config = oneCoreConfig();
    const TraceProgram prog = singleLoadTrace();
    CoreComplex cc(config, 0, &prog, 0x10000);
    runUntilInert(cc);

    // Empty InQ, nothing internal pending: the skip may only reach
    // max_local + 1.
    const auto outcome = cc.cycle(200);
    EXPECT_EQ(outcome, CoreComplex::CycleOutcome::Progress);
    EXPECT_EQ(cc.localTime(), 201u);
}

TEST(CoreComplexSkip, WaitInboundWhenFreeRunningAndIdle)
{
    const SimConfig config = oneCoreConfig();
    const TraceProgram prog = singleLoadTrace();
    CoreComplex cc(config, 0, &prog, 0x10000);
    runUntilInert(cc);

    const Tick before = cc.localTime();
    const auto outcome = cc.cycle(maxTick - 1);
    EXPECT_EQ(outcome, CoreComplex::CycleOutcome::WaitInbound);
    EXPECT_EQ(cc.localTime(), before); // frozen, not advanced
}

TEST(CoreComplexSkip, FutureHeadDoesNotBlockEarlierJumpTarget)
{
    // A fill whose timestamp lies beyond the pacing limit: the core
    // jumps to the limit, not to the head.
    const SimConfig config = oneCoreConfig();
    const TraceProgram prog = singleLoadTrace();
    CoreComplex cc(config, 0, &prog, 0x10000);
    runUntilInert(cc);

    ASSERT_TRUE(cc.inQ().push(fill(0x100000, 100000)));
    cc.cycle(300);
    EXPECT_EQ(cc.localTime(), 301u);
}

TEST(CoreComplexSkip, BusyCoreNeverSkips)
{
    // A long compute burst keeps the core busy: local time advances
    // strictly one cycle per call even with a generous pacing limit.
    SimConfig config = oneCoreConfig();
    TraceProgram prog;
    prog.codeFootprint = 256;
    TraceBuilder b(prog);
    b.compute(400);
    b.end();
    CoreComplex cc(config, 0, &prog, 0x10000);

    // Answer the I-fetch misses inline.
    for (int i = 0; i < 200 && !cc.finished(); ++i) {
        const Tick before = cc.localTime();
        cc.cycle(maxTick - 2);
        BusMsg msg;
        while (cc.outQ().pop(msg))
            cc.inQ().push(fill(msg.addr, msg.ts + 3, msg.cache));
        if (cc.finished())
            break;
        EXPECT_LE(cc.localTime(), before + 4)
            << "unexpected large jump while busy";
    }
}
