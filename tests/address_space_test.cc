/**
 * @file
 * Unit tests for the simulated address-space layout.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"

using namespace slacksim;

TEST(AddressSpace, SharedAllocationsAreDisjointAndAligned)
{
    AddressSpace space(8);
    const Addr a = space.allocShared(100, 64);
    const Addr b = space.allocShared(1, 64);
    const Addr c = space.allocShared(4096, 128);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 128, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(c, b + 1);
    EXPECT_EQ(space.sharedBytes(), c + 4096 - AddressSpace::sharedBase_);
}

TEST(AddressSpace, PrivateRegionsPerThreadAreDisjoint)
{
    AddressSpace space(4);
    const Addr p0 = space.allocPrivate(0, 1 << 20);
    const Addr p1 = space.allocPrivate(1, 1 << 20);
    const Addr p0b = space.allocPrivate(0, 64);
    EXPECT_NE(p0, p1);
    // Thread regions are separated by the fixed stride.
    EXPECT_EQ(p1 - p0, AddressSpace::privateStride_);
    EXPECT_GE(p0b, p0 + (1 << 20));
    EXPECT_LT(p0b, p1);
}

TEST(AddressSpace, CodeBasesAreDistinct)
{
    AddressSpace space(8);
    for (CoreId a = 0; a < 8; ++a)
        for (CoreId b = a + 1; b < 8; ++b)
            EXPECT_NE(space.codeBase(a), space.codeBase(b));
}

TEST(AddressSpace, RegionClassification)
{
    AddressSpace space(2);
    const Addr shared = space.allocShared(64);
    const Addr priv = space.allocPrivate(0, 64);
    EXPECT_TRUE(AddressSpace::isShared(shared));
    EXPECT_FALSE(AddressSpace::isShared(priv));
    EXPECT_FALSE(AddressSpace::isShared(space.codeBase(0)));
}

TEST(AddressSpace, DeterministicLayout)
{
    AddressSpace a(8), b(8);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.allocShared(100 + i, 64), b.allocShared(100 + i, 64));
    for (CoreId t = 0; t < 8; ++t)
        EXPECT_EQ(a.allocPrivate(t, 1000), b.allocPrivate(t, 1000));
}
