/**
 * @file
 * Validates the slacksim.run_report.v5 document end to end: every
 * section and key the schema promises, exact agreement between the
 * forensics attribution tables and the run's violation counters, a
 * replayable adaptive decision chain, and the observe example's
 * --report-out flag driven through a real child process.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/run.hh"
#include "json_lite.hh"
#include "obs/run_report.hh"

using namespace slacksim;

namespace {

SimConfig
smallConfig(SchemeKind scheme, bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 300;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = scheme;
    config.engine.parallelHost = parallel_host;
    config.engine.maxCommittedUops = 30000;
    return config;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

jsonlite::Value
runAndParse(SimConfig config, const std::string &name,
            RunResult *result_out = nullptr)
{
    const std::string path = tempPath(name);
    config.engine.obs.reportOut = path;
    const RunResult r = runSimulation(config);
    if (result_out)
        *result_out = r;
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << "report not written: " << path;
    std::stringstream ss;
    ss << is.rdbuf();
    return jsonlite::parse(ss.str());
}

/** The keys every v4 report must carry, section by section. */
void
expectSchemaComplete(const jsonlite::Value &doc)
{
    EXPECT_EQ(doc.at("schema").asString(), obs::runReportSchema);

    const auto &generator = doc.at("generator");
    EXPECT_EQ(generator.at("name").asString(), "slacksim");
    EXPECT_TRUE(generator.has("host_threads"));

    // v4: correlation id (empty standalone) and build provenance.
    EXPECT_TRUE(doc.has("job_id"));
    const auto &build = generator.at("build");
    for (const char *key :
         {"git", "dirty", "compiler", "build_type", "obs",
          "sanitize"}) {
        EXPECT_TRUE(build.has(key)) << "generator.build." << key;
    }
    EXPECT_FALSE(build.at("git").asString().empty());
    EXPECT_TRUE(doc.at("forensics").has("job_id"));

    const auto &config = doc.at("config");
    for (const char *key :
         {"workload", "cores", "scheme", "parallel_host", "slack_bound",
          "quantum", "adaptive", "checkpoint", "recovery", "obs"}) {
        EXPECT_TRUE(config.has(key)) << "config." << key;
    }
    for (const char *key :
         {"storm_threshold", "storm_window", "pinned_epoch_limit",
          "repromote_after"}) {
        EXPECT_TRUE(config.at("recovery").has(key))
            << "config.recovery." << key;
    }
    for (const char *key :
         {"target_rate", "band", "epoch_cycles", "initial_bound",
          "min_bound", "max_bound", "windowed_rate"}) {
        EXPECT_TRUE(config.at("adaptive").has(key))
            << "config.adaptive." << key;
    }
    for (const char *key :
         {"mode", "tech", "interval", "child_timeout_ms"})
        EXPECT_TRUE(config.at("checkpoint").has(key));
    for (const char *key :
         {"trace_out", "metrics_out", "report_out", "watchdog_ms",
          "profile", "profile_out", "job_id"}) {
        EXPECT_TRUE(config.at("obs").has(key)) << "config.obs." << key;
    }

    const auto &result = doc.at("result");
    for (const char *key :
         {"exec_cycles", "global_cycles", "committed_uops", "ipc",
          "cpi", "wall_seconds", "violations", "host",
          "final_slack_bound", "intervals"}) {
        EXPECT_TRUE(result.has(key)) << "result." << key;
    }
    for (const char *key : {"bus", "map", "bus_rate", "map_rate"})
        EXPECT_TRUE(result.at("violations").has(key));
    for (const char *key :
         {"checkpoints", "checkpoint_bytes", "checkpoint_seconds",
          "checkpoint_async_seconds", "rollbacks", "wasted_cycles",
          "replay_cycles", "slack_adjustments", "manager_wakeups",
          "max_observed_slack", "host_threads_used"}) {
        EXPECT_TRUE(result.at("host").has(key)) << "result.host." << key;
    }

    const auto &forensics = doc.at("forensics");
    const auto &fv = forensics.at("violations");
    for (const char *key : {"bus_total", "map_total", "slack_histogram",
                            "pairs", "top_offenders",
                            "untracked_buckets"}) {
        EXPECT_TRUE(fv.has(key)) << "forensics.violations." << key;
    }
    for (const char *side : {"bus", "map"}) {
        const auto &h = fv.at("slack_histogram").at(side);
        for (const char *key : {"count", "mean", "p50", "p95", "max"})
            EXPECT_TRUE(h.has(key)) << side << "." << key;
    }
    for (const char *key :
         {"decisions", "decisions_dropped", "episodes",
          "episodes_dropped", "transitions", "transitions_dropped"}) {
        EXPECT_TRUE(forensics.has(key)) << "forensics." << key;
    }

    const auto &degradation = doc.at("degradation");
    for (const char *key : {"level", "demotions", "repromotions",
                            "storm_threshold", "repromote_after"}) {
        EXPECT_TRUE(degradation.has(key)) << "degradation." << key;
    }

    const auto &faults = doc.at("faults");
    for (const char *key : {"spec_count", "seed", "injections"})
        EXPECT_TRUE(faults.has(key)) << "faults." << key;

    const auto &obs = doc.at("obs");
    for (const char *key :
         {"trace_records", "trace_dropped", "trace_bytes",
          "metrics_rows", "metrics_bytes", "sampler_host_ns",
          "io_errors"}) {
        EXPECT_TRUE(obs.has(key)) << "obs." << key;
    }

    const auto &watchdog = doc.at("watchdog");
    for (const char *key : {"enabled", "stall_ms", "stall_dumps"})
        EXPECT_TRUE(watchdog.has(key)) << "watchdog." << key;

    // v3: the profile section is always present; with profiling off it
    // carries enabled=false and empty arrays.
    const auto &profile = doc.at("profile");
    for (const char *key :
         {"enabled", "wall_ns", "attributed_ns", "tsc_ghz", "phases",
          "workers", "hw", "verdict"}) {
        EXPECT_TRUE(profile.has(key)) << "profile." << key;
    }
    for (const char *key :
         {"available", "reason", "cycles", "instructions",
          "cache_misses"}) {
        EXPECT_TRUE(profile.at("hw").has(key)) << "profile.hw." << key;
    }
}

/** Forensic attribution must sum exactly to the run's counters. */
void
expectAttributionExact(const jsonlite::Value &doc)
{
    const auto &rv = doc.at("result").at("violations");
    const auto &fv = doc.at("forensics").at("violations");
    EXPECT_EQ(fv.at("bus_total").asUint(), rv.at("bus").asUint());
    EXPECT_EQ(fv.at("map_total").asUint(), rv.at("map").asUint());

    std::uint64_t pair_bus = 0;
    std::uint64_t pair_map = 0;
    for (const auto &p : fv.at("pairs").array) {
        EXPECT_TRUE(p.has("requester"));
        EXPECT_TRUE(p.has("prior"));
        pair_bus += p.at("bus").asUint();
        pair_map += p.at("map").asUint();
    }
    EXPECT_EQ(pair_bus, fv.at("bus_total").asUint());
    EXPECT_EQ(pair_map, fv.at("map_total").asUint());

    EXPECT_EQ(fv.at("slack_histogram").at("bus").at("count").asUint(),
              fv.at("bus_total").asUint());
    EXPECT_EQ(fv.at("slack_histogram").at("map").at("count").asUint(),
              fv.at("map_total").asUint());
}

} // namespace

TEST(RunReport, SerialAdaptiveSchemaAndAttribution)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;

    RunResult r;
    const auto doc = runAndParse(config, "report_serial.json", &r);
    expectSchemaComplete(doc);
    expectAttributionExact(doc);
    EXPECT_GT(doc.at("result").at("violations").at("bus").asUint() +
                  doc.at("result").at("violations").at("map").asUint(),
              0u)
        << "run produced no violations; attribution test is vacuous";

    // The document mirrors the in-process result.
    EXPECT_EQ(doc.at("result").at("committed_uops").asUint(),
              r.committedUops);
    EXPECT_EQ(doc.at("result").at("final_slack_bound").asUint(),
              r.finalSlackBound);
    EXPECT_FALSE(doc.at("config").at("parallel_host").asBool());

    // The decision log replays every slack-bound change.
    const auto &decisions = doc.at("forensics").at("decisions").array;
    ASSERT_FALSE(decisions.empty());
    std::uint64_t changes = 0;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const auto &d = decisions[i];
        for (const char *key :
             {"cycle", "rate", "verdict", "old_bound", "new_bound"})
            ASSERT_TRUE(d.has(key)) << "decision." << key;
        if (i > 0) {
            EXPECT_EQ(d.at("old_bound").asUint(),
                      decisions[i - 1].at("new_bound").asUint())
                << "chain broken at " << i;
        }
        if (d.at("new_bound").asUint() != d.at("old_bound").asUint() &&
            d.at("verdict").asString() != "restored") {
            ++changes;
        }
    }
    EXPECT_EQ(changes,
              doc.at("result").at("host").at("slack_adjustments")
                  .asUint());
    EXPECT_EQ(decisions.back().at("new_bound").asUint(),
              doc.at("result").at("final_slack_bound").asUint());
}

TEST(RunReport, ParallelAdaptiveWithQuietWatchdog)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, true);
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;
    config.engine.obs.watchdogMs = 60000; // armed but silent

    const auto doc = runAndParse(config, "report_parallel.json");
    expectSchemaComplete(doc);
    expectAttributionExact(doc);
    EXPECT_TRUE(doc.at("config").at("parallel_host").asBool());
    EXPECT_TRUE(doc.at("watchdog").at("enabled").asBool());
    EXPECT_EQ(doc.at("watchdog").at("stall_ms").asUint(), 60000u);
    EXPECT_EQ(doc.at("watchdog").at("stall_dumps").asUint(), 0u);
}

TEST(RunReport, SpeculativeRollbacksKeepLedgerExact)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 1e-5;
    config.engine.adaptive.epochCycles = 500;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 2000;

    RunResult r;
    const auto doc = runAndParse(config, "report_spec.json", &r);
    expectSchemaComplete(doc);
    expectAttributionExact(doc);
    EXPECT_GT(doc.at("result").at("host").at("rollbacks").asUint(), 0u)
        << "no rollbacks; snapshot participation untested";

    // Episodes cover every checkpoint and rollback the host counted.
    std::uint64_t ckpts = 0;
    std::uint64_t rollbacks = 0;
    for (const auto &e : doc.at("forensics").at("episodes").array) {
        const std::string kind = e.at("kind").asString();
        if (kind == "checkpoint")
            ++ckpts;
        else if (kind == "rollback")
            ++rollbacks;
        else
            EXPECT_EQ(kind, "replay");
    }
    EXPECT_EQ(ckpts,
              doc.at("result").at("host").at("checkpoints").asUint());
    EXPECT_EQ(rollbacks,
              doc.at("result").at("host").at("rollbacks").asUint());
}

TEST(RunReport, FaultInjectionAndDegradationAttributed)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 1e-5;
    config.engine.adaptive.epochCycles = 500;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 2000;
    config.engine.faultSpecs = {"spurious-rollback@ckpt:2"};
    config.engine.faultSeed = 7;

    const auto doc = runAndParse(config, "report_faulted.json");
    expectSchemaComplete(doc);

    const auto &faults = doc.at("faults");
    EXPECT_EQ(faults.at("spec_count").asUint(), 1u);
    EXPECT_EQ(faults.at("seed").asUint(), 7u);
    const auto &injections = faults.at("injections").array;
    ASSERT_EQ(injections.size(), 1u);
    for (const char *key :
         {"kind", "trigger", "cycle", "detail", "handled_by"})
        EXPECT_TRUE(injections[0].has(key)) << "injection." << key;
    EXPECT_EQ(injections[0].at("kind").asString(),
              "spurious-rollback");
    EXPECT_EQ(injections[0].at("handled_by").asString(),
              "manager-rollback");
    EXPECT_EQ(doc.at("degradation").at("level").asString(),
              "speculative");
}

namespace {

/** Shared assertions for a profile-enabled report. */
void
expectProfileCoherent(const jsonlite::Value &doc)
{
    const auto &profile = doc.at("profile");
    EXPECT_TRUE(profile.at("enabled").asBool());
    EXPECT_GT(profile.at("wall_ns").asUint(), 0u);

    // The global table lists every phase by name plus the "other"
    // residual bucket.
    const auto &phases = profile.at("phases").array;
    for (const char *name :
         {"simulate", "queue-push", "wait-for-slack", "wait-inbound",
          "barrier", "checkpoint", "rollback-replay", "drain",
          "pacer-epoch", "sample", "other"}) {
        bool found = false;
        for (const auto &p : phases)
            found |= p.at("name").asString() == name;
        EXPECT_TRUE(found) << "missing phase " << name;
    }

    // Per worker, exclusive phase time plus the residual reconstructs
    // the worker's span exactly (residual saturates at zero).
    const auto &workers = profile.at("workers").array;
    ASSERT_FALSE(workers.empty());
    for (const auto &w : workers) {
        for (const char *key :
             {"role", "tid", "span_ns", "other_ns", "truncated",
              "dropped_paths", "phases", "paths"})
            ASSERT_TRUE(w.has(key)) << "worker." << key;
        EXPECT_FALSE(w.at("role").asString().empty());
        const std::uint64_t span = w.at("span_ns").asUint();
        const std::uint64_t other = w.at("other_ns").asUint();
        std::uint64_t attributed = 0;
        for (const auto &p : w.at("phases").array)
            attributed += p.at("ns").asUint();
        if (other == 0)
            EXPECT_GE(attributed, span) << w.at("role").asString();
        else
            EXPECT_EQ(attributed + other, span)
                << w.at("role").asString();
    }

    // Something simulated, so host time landed in the simulate phase
    // and the verdict summarises a real distribution.
    std::uint64_t simulate_ns = 0;
    for (const auto &p : phases)
        if (p.at("name").asString() == "simulate")
            simulate_ns = p.at("ns").asUint();
    EXPECT_GT(simulate_ns, 0u);
    EXPECT_FALSE(profile.at("verdict").asString().empty());
    EXPECT_GT(profile.at("attributed_ns").asUint(), 0u);
}

} // namespace

TEST(RunReport, SerialProfileSectionAttributesHostTime)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 2000;
    config.engine.obs.profile = true;

    const auto doc = runAndParse(config, "report_profile_serial.json");
    expectSchemaComplete(doc);
    expectProfileCoherent(doc);
    EXPECT_TRUE(doc.at("config").at("obs").at("profile").asBool());
}

TEST(RunReport, ParallelProfileCoversEveryHostThread)
{
    SimConfig config = smallConfig(SchemeKind::Adaptive, true);
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;
    config.engine.obs.profile = true;
    // Pin the topology: the auto policy would run inline (manager
    // only) on a single-CPU host, and this test is about covering
    // multiple host threads.
    config.engine.hostThreads = 3;

    const auto doc =
        runAndParse(config, "report_profile_parallel.json");
    expectSchemaComplete(doc);
    expectProfileCoherent(doc);
    // Parallel host: the manager plus the two pinned workers —
    // strictly more profile slots than the serial run's one.
    EXPECT_GT(doc.at("profile").at("workers").array.size(), 1u);
}

TEST(RunReport, ObserveExampleEndToEnd)
{
#ifndef SLACKSIM_OBSERVE_BIN
    GTEST_SKIP() << "observe binary path not provided";
#else
    const std::string report = tempPath("observe_report.json");
    const std::string metrics = tempPath("observe_metrics.csv");
    const std::string cmd = std::string(SLACKSIM_OBSERVE_BIN) +
                            " --serial --uops=20000" +
                            " --report-out=" + report +
                            " --metrics-out=" + metrics +
                            " > " + tempPath("observe_stdout.txt") +
                            " 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream is(report);
    ASSERT_TRUE(is.good()) << "observe did not write " << report;
    std::stringstream ss;
    ss << is.rdbuf();
    const auto doc = jsonlite::parse(ss.str());
    expectSchemaComplete(doc);
    expectAttributionExact(doc);
    EXPECT_EQ(doc.at("config").at("obs").at("report_out").asString(),
              report);
    // The metrics sampler ran, and its self-accounting shows up.
    EXPECT_GT(doc.at("obs").at("metrics_rows").asUint(), 0u);
    std::ifstream mis(metrics);
    EXPECT_TRUE(mis.good()) << "observe did not write " << metrics;
#endif
}
