/**
 * @file
 * Unit tests for the util layer: RNG, SPSC queue, snapshots, options
 * parsing and table formatting.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "stats/table.hh"
#include "util/options.hh"
#include "util/rng.hh"
#include "util/snapshot.hh"
#include "util/spsc_queue.hh"

using namespace slacksim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, InRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = r.inRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, StateRoundTrip)
{
    Rng a(99);
    a.next64();
    const auto state = a.rawState();
    const auto expect = a.next64();
    Rng b(1);
    b.setRawState(state);
    EXPECT_EQ(b.next64(), expect);
}

TEST(SpscQueue, PushPopFifoOrder)
{
    SpscQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    int v;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.pop(v));
}

TEST(SpscQueue, FullnessAndCapacity)
{
    SpscQueue<int> q(4);
    std::size_t pushed = 0;
    while (q.push(static_cast<int>(pushed)))
        ++pushed;
    EXPECT_EQ(pushed, q.capacity());
    EXPECT_TRUE(q.full());
    int v;
    EXPECT_TRUE(q.pop(v));
    EXPECT_FALSE(q.full());
}

TEST(SpscQueue, FrontPeeksWithoutRemoving)
{
    SpscQueue<int> q(8);
    EXPECT_EQ(q.front(), nullptr);
    q.push(42);
    ASSERT_NE(q.front(), nullptr);
    EXPECT_EQ(*q.front(), 42);
    EXPECT_EQ(q.size(), 1u);
    q.popFront();
    EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, QuiescedContentsRoundTrip)
{
    SpscQueue<int> q(16);
    for (int i = 0; i < 10; ++i)
        q.push(i);
    int v;
    q.pop(v);
    q.pop(v);
    const auto contents = q.quiescedContents();
    ASSERT_EQ(contents.size(), 8u);
    EXPECT_EQ(contents.front(), 2);
    EXPECT_EQ(contents.back(), 9);

    SpscQueue<int> r(16);
    r.quiescedAssign(contents);
    for (int i = 2; i < 10; ++i) {
        ASSERT_TRUE(r.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_TRUE(r.empty());
}

TEST(SpscQueue, TwoThreadStress)
{
    SpscQueue<std::uint64_t> q(256);
    constexpr std::uint64_t count = 200000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < count;) {
            if (q.push(i))
                ++i;
        }
    });
    std::uint64_t expect = 0;
    std::uint64_t v;
    while (expect < count) {
        if (q.pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        }
    }
    producer.join();
    EXPECT_TRUE(q.empty());
}

TEST(Snapshot, ScalarAndVectorRoundTrip)
{
    SnapshotWriter w;
    w.putMarker(1);
    w.put<std::uint32_t>(0xdeadbeef);
    w.put<double>(3.25);
    std::vector<std::uint16_t> vec = {1, 2, 3, 4, 5};
    w.putVector(vec);
    w.putMarker(2);

    SnapshotReader r(w.bytes());
    r.checkMarker(1);
    EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
    EXPECT_EQ(r.get<double>(), 3.25);
    EXPECT_EQ(r.getVector<std::uint16_t>(), vec);
    r.checkMarker(2);
    EXPECT_TRUE(r.exhausted());
}

TEST(Snapshot, EmptyVector)
{
    SnapshotWriter w;
    w.putVector(std::vector<int>{});
    SnapshotReader r(w.bytes());
    EXPECT_TRUE(r.getVector<int>().empty());
    EXPECT_TRUE(r.exhausted());
}

TEST(Options, ParsesKeyValueAndFlags)
{
    const char *argv[] = {"prog", "--alpha=3", "--beta", "pos1",
                          "--gamma=x,y", "pos2"};
    Options o(6, argv);
    EXPECT_TRUE(o.has("alpha"));
    EXPECT_TRUE(o.has("beta"));
    EXPECT_FALSE(o.has("delta"));
    EXPECT_EQ(o.getUint("alpha", 0), 3u);
    EXPECT_EQ(o.get("gamma"), "x,y");
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "pos1");
    EXPECT_EQ(o.positional()[1], "pos2");
}

TEST(Options, TypedDefaults)
{
    const char *argv[] = {"prog", "--rate=0.25", "--on=true",
                          "--off=false"};
    Options o(4, argv);
    EXPECT_DOUBLE_EQ(o.getDouble("rate", 1.0), 0.25);
    EXPECT_DOUBLE_EQ(o.getDouble("missing", 1.5), 1.5);
    EXPECT_TRUE(o.getBool("on", false));
    EXPECT_FALSE(o.getBool("off", true));
    EXPECT_TRUE(o.getBool("missing", true));
}

TEST(OptionsDeathTest, RejectsUnknownFlag)
{
    const std::vector<OptionSpec> known = {
        {"alpha", "N", "a known flag"},
    };
    const char *argv[] = {"prog", "--alpha=3", "--tpyo=1"};
    Options o(3, argv);
    EXPECT_EXIT(o.enforceKnown("prog", known),
                testing::ExitedWithCode(1), "unknown option --tpyo");

    const char *good[] = {"prog", "--alpha=3"};
    Options ok(2, good);
    ok.enforceKnown("prog", known); // must not exit

    const char *help[] = {"prog", "--help"};
    Options h(2, help);
    // Usage text goes to stdout (EXPECT_EXIT only matches stderr).
    EXPECT_EXIT(h.enforceKnown("prog", known),
                testing::ExitedWithCode(0), "");
}

TEST(OptionsDeathTest, SuggestsClosestFlagForTypos)
{
    const std::vector<OptionSpec> known = {
        {"report-out", "FILE", "run report path"},
        {"watchdog-ms", "MS", "stall threshold"},
    };
    {
        // One transposition away from report-out.
        const char *argv[] = {"prog", "--reprot-out=r.json"};
        Options o(2, argv);
        EXPECT_EXIT(o.enforceKnown("prog", known),
                    testing::ExitedWithCode(1),
                    "unknown option --reprot-out \\(did you mean "
                    "--report-out\\?");
    }
    {
        // Wrong unit suffix on the watchdog flag.
        const char *argv[] = {"prog", "--watchdog-sec=5"};
        Options o(2, argv);
        EXPECT_EXIT(o.enforceKnown("prog", known),
                    testing::ExitedWithCode(1),
                    "did you mean --watchdog-ms\\?");
    }
    {
        // Nothing plausibly close: no suggestion, plain rejection.
        const char *argv[] = {"prog", "--zzzzzzzzzz=1"};
        Options o(2, argv);
        EXPECT_EXIT(o.enforceKnown("prog", known),
                    testing::ExitedWithCode(1),
                    "unknown option --zzzzzzzzzz \\(run with --help");
    }
}

TEST(Table, PrintsAlignedColumnsAndCsv)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.cell("alpha").cell(std::uint64_t{42}).endRow();
    t.cell("b").cell(1.5, 1).endRow();
    EXPECT_EQ(t.rowCount(), 2u);

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("demo"), std::string::npos);
    EXPECT_NE(text.str().find("alpha"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,42\nb,1.5\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.00123, 3), "0.123%");
    EXPECT_EQ(formatCycles(50000), "50k");
    EXPECT_EQ(formatCycles(2000000), "2M");
    EXPECT_EQ(formatCycles(1234), "1234");
}

TEST(Options, GetAllReturnsRepeatedFlagsInOrder)
{
    const char *argv[] = {"prog", "--fault-spec=a@ckpt:1", "--other=x",
                          "--fault-spec=b@ckpt:2"};
    Options o(4, argv);
    // Scalar get keeps last-wins semantics for repeated flags...
    EXPECT_EQ(o.get("fault-spec"), "b@ckpt:2");
    // ...while getAll preserves every occurrence in argv order.
    const auto all = o.getAll("fault-spec");
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], "a@ckpt:1");
    EXPECT_EQ(all[1], "b@ckpt:2");
    EXPECT_TRUE(o.getAll("missing").empty());
}

TEST(OptionsDeathTest, RejectsMalformedNumericValues)
{
    const char *argv[] = {"prog",       "--empty=",   "--neg=-5",
                          "--junk=5x",  "--huge=99999999999999999999",
                          "--fempty=",  "--fjunk=1.5q"};
    Options o(7, argv);
    // An empty or negative value must not silently become 0 or wrap
    // modulo 2^64 (a "--slack=-5" run would quietly be unbounded).
    EXPECT_DEATH(o.getUint("empty", 7), "non-negative integer");
    EXPECT_DEATH(o.getUint("neg", 7), "non-negative integer");
    EXPECT_DEATH(o.getUint("junk", 7), "expects an integer");
    EXPECT_DEATH(o.getUint("huge", 7), "expects an integer");
    EXPECT_DEATH(o.getDouble("fempty", 1.0), "expects a number");
    EXPECT_DEATH(o.getDouble("fjunk", 1.0), "expects a number");
}
