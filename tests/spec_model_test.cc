/**
 * @file
 * Tests for the speculative-slack analytical model and the RunResult
 * derived metrics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/run_result.hh"
#include "core/spec_model.hh"

using namespace slacksim;

TEST(SpecModel, NoViolationsCostsOnlyCheckpointedRun)
{
    SpecModelInputs in;
    in.tCc = 500;
    in.tCpt = 300;
    in.fraction = 0.0;
    in.rollbackDistance = 10000;
    in.interval = 50000;
    EXPECT_DOUBLE_EQ(speculativeTimeEstimate(in), 300.0);
}

TEST(SpecModel, AllIntervalsViolateAddsFullReplay)
{
    SpecModelInputs in;
    in.tCc = 500;
    in.tCpt = 300;
    in.fraction = 1.0;
    in.rollbackDistance = 50000; // whole interval wasted
    in.interval = 50000;
    // Ts = 0 + 1*1*300 + 1*500 = 800.
    EXPECT_DOUBLE_EQ(speculativeTimeEstimate(in), 800.0);
}

TEST(SpecModel, PaperLikeNumbers)
{
    // Barnes at 50k from the paper: Tcc=517, Tcpt=537, F=0.93, Dr=6.0k.
    SpecModelInputs in;
    in.tCc = 517;
    in.tCpt = 537;
    in.fraction = 0.93;
    in.rollbackDistance = 6000;
    in.interval = 50000;
    const double ts = speculativeTimeEstimate(in);
    // (1-.93)*537 + .93*6000*537/50000 + .93*517 = 578.6...
    EXPECT_NEAR(ts, 578.4, 1.0);
    EXPECT_GT(ts, in.tCc); // the paper's negative result
}

TEST(SpecModel, LinearInFraction)
{
    SpecModelInputs lo, hi;
    lo.tCc = hi.tCc = 100;
    lo.tCpt = hi.tCpt = 60;
    lo.rollbackDistance = hi.rollbackDistance = 5000;
    lo.interval = hi.interval = 10000;
    lo.fraction = 0.2;
    hi.fraction = 0.8;
    const double mid_in = (speculativeTimeEstimate(lo) +
                           speculativeTimeEstimate(hi)) /
                          2.0;
    SpecModelInputs mid = lo;
    mid.fraction = 0.5;
    EXPECT_NEAR(speculativeTimeEstimate(mid), mid_in, 1e-9);
}

TEST(RunResult, IntervalAggregates)
{
    RunResult r;
    r.intervals.push_back({0, 100, 3});
    r.intervals.push_back({1000, maxTick, 0});
    r.intervals.push_back({2000, 300, 1});
    r.intervals.push_back({3000, maxTick, 0});
    EXPECT_DOUBLE_EQ(r.fractionIntervalsViolated(), 0.5);
    EXPECT_DOUBLE_EQ(r.meanFirstViolationDistance(), 200.0);
}

TEST(RunResult, EmptyIntervals)
{
    RunResult r;
    EXPECT_DOUBLE_EQ(r.fractionIntervalsViolated(), 0.0);
    EXPECT_DOUBLE_EQ(r.meanFirstViolationDistance(), 0.0);
}

TEST(RunResult, DerivedRates)
{
    RunResult r;
    r.execCycles = 1000;
    r.committedUops = 4000;
    r.perCore.resize(8);
    r.violations.busViolations = 20;
    r.violations.mapViolations = 5;
    EXPECT_DOUBLE_EQ(r.ipc(), 4.0);
    EXPECT_DOUBLE_EQ(r.cpi(), 2.0); // 1000*8/4000
    EXPECT_DOUBLE_EQ(r.violationRate(), 0.025);
    EXPECT_DOUBLE_EQ(r.busViolationRate(), 0.02);
    EXPECT_DOUBLE_EQ(r.mapViolationRate(), 0.005);
}

TEST(RunResult, ZeroDivisionGuards)
{
    RunResult r;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(r.cpi(), 0.0);
    EXPECT_DOUBLE_EQ(r.violationRate(), 0.0);
}

TEST(RunResult, SummaryMentionsKeyFields)
{
    RunResult r;
    r.workloadName = "fft";
    r.scheme = SchemeKind::Adaptive;
    r.execCycles = 1234;
    r.committedUops = 5678;
    r.perCore.resize(8);
    r.host.rollbacks = 2;
    r.intervals.push_back({0, 10, 1});
    std::ostringstream os;
    r.printSummary(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("fft"), std::string::npos);
    EXPECT_NE(s.find("adaptive"), std::string::npos);
    EXPECT_NE(s.find("1234"), std::string::npos);
    EXPECT_NE(s.find("rollbacks"), std::string::npos);
    EXPECT_NE(s.find("final slack bound"), std::string::npos);
}

TEST(SpecModel, DegradedTimeInterpolatesBetweenTsAndTcpt)
{
    SpecModelInputs in;
    in.tCc = 100.0;
    in.tCpt = 20.0;
    in.fraction = 0.1;
    in.rollbackDistance = 500.0;
    in.interval = 1000.0;
    const double ts = speculativeTimeEstimate(in);
    // Speculation pays rollback + replay overhead on top of Tcpt.
    ASSERT_GT(ts, in.tCpt);

    // The ends of the ladder: nothing demoted = full speculation,
    // everything demoted = plain checkpointed slack simulation.
    EXPECT_DOUBLE_EQ(degradedTimeEstimate(in, 0.0), ts);
    EXPECT_DOUBLE_EQ(degradedTimeEstimate(in, 1.0), in.tCpt);

    // Demotion hands host time back monotonically.
    double prev = ts;
    for (const double f : {0.25, 0.5, 0.75}) {
        const double t = degradedTimeEstimate(in, f);
        EXPECT_LT(t, prev);
        EXPECT_GT(t, in.tCpt);
        prev = t;
    }
}
