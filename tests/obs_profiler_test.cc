/**
 * @file
 * Host-time profiler tests: exclusive-time attribution through nested
 * scopes, exact per-thread counts across concurrent workers, the
 * disabled path being inert, the perf_event fallback, folded-stack
 * export shape, and a real engine run landing host time in the
 * simulate phase with span reconstruction per worker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/run.hh"
#include "obs/hw_counters.hh"
#include "obs/profiler.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::obs;

namespace {

/** Burn a little host time so scopes accumulate nonzero ticks even on
 *  coarse clocks. Returns a value to keep the loop observable. */
std::uint64_t
spin(std::uint64_t iters)
{
    volatile std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i)
        acc += i * 2654435761u;
    return acc;
}

const PhaseTotal *
findTotal(const std::vector<PhaseTotal> &totals, const std::string &name)
{
    for (const auto &t : totals)
        if (t.name == name)
            return &t;
    return nullptr;
}

} // namespace

TEST(Profiler, NestedScopesAttributeExclusiveTime)
{
    Profiler &prof = Profiler::instance();
    ASSERT_TRUE(prof.beginSession());
    prof.registerThread("tester");

    {
        PhaseScope drain(Phase::Drain);
        spin(200000);
        {
            PhaseScope simulate(Phase::Simulate);
            spin(200000);
        }
        spin(200000);
    }

    const ProfileReport report = prof.endSession();
    ASSERT_EQ(report.workers.size(), 1u);
    const ProfileWorker &w = report.workers[0];
    EXPECT_EQ(w.role, "tester");

    // Each phase appears once, exactly one scope each.
    const PhaseTotal *drain = findTotal(w.phases, "drain");
    const PhaseTotal *simulate = findTotal(w.phases, "simulate");
    ASSERT_NE(drain, nullptr);
    ASSERT_NE(simulate, nullptr);
    EXPECT_EQ(drain->count, 1u);
    EXPECT_EQ(simulate->count, 1u);
    EXPECT_GT(drain->ns, 0u);
    EXPECT_GT(simulate->ns, 0u);

    // The nested path exists and is attributed to the leaf.
    const PhaseTotal *nested = findTotal(w.paths, "drain;simulate");
    ASSERT_NE(nested, nullptr) << "nested path missing";
    EXPECT_EQ(nested->ns, simulate->ns)
        << "leaf total must equal its only path";

    // Exclusive attribution reconstructs the span exactly.
    std::uint64_t attributed = 0;
    for (const auto &p : w.phases)
        attributed += p.ns;
    EXPECT_EQ(attributed + w.otherNs, w.spanNs);
    EXPECT_EQ(w.truncated, 0u);
    EXPECT_EQ(w.droppedPaths, 0u);
}

TEST(Profiler, PerThreadCountsAreExact)
{
    Profiler &prof = Profiler::instance();
    ASSERT_TRUE(prof.beginSession());

    constexpr int threads = 4;
    constexpr std::uint64_t scopesPerThread = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([t] {
            Profiler &p = Profiler::instance();
            p.registerThread("worker " + std::to_string(t));
            for (std::uint64_t i = 0; i < scopesPerThread; ++i) {
                PhaseScope outer(Phase::Simulate);
                PhaseScope inner(Phase::QueuePush);
                spin(50);
            }
            p.unregisterThread();
        });
    }
    for (auto &th : pool)
        th.join();

    const ProfileReport report = prof.endSession();
    ASSERT_EQ(report.workers.size(), static_cast<std::size_t>(threads));
    for (const auto &w : report.workers) {
        const PhaseTotal *simulate = findTotal(w.phases, "simulate");
        const PhaseTotal *push = findTotal(w.phases, "queue-push");
        ASSERT_NE(simulate, nullptr) << w.role;
        ASSERT_NE(push, nullptr) << w.role;
        EXPECT_EQ(simulate->count, scopesPerThread) << w.role;
        EXPECT_EQ(push->count, scopesPerThread) << w.role;
        EXPECT_EQ(w.truncated, 0u) << w.role;
        std::uint64_t attributed = 0;
        for (const auto &p : w.phases)
            attributed += p.ns;
        EXPECT_EQ(attributed + w.otherNs, w.spanNs) << w.role;
    }

    // Cross-worker totals sum the per-worker counts.
    const PhaseTotal *simulate =
        findTotal(report.phaseTotals, "simulate");
    ASSERT_NE(simulate, nullptr);
    EXPECT_EQ(simulate->count,
              static_cast<std::uint64_t>(threads) * scopesPerThread);
}

TEST(Profiler, ScopesWithoutSessionAreInert)
{
    Profiler &prof = Profiler::instance();
    ASSERT_FALSE(prof.active());

    // No session: scopes and registration must be no-ops.
    prof.registerThread("ghost");
    {
        PhaseScope simulate(Phase::Simulate);
        PhaseScope barrier(Phase::Barrier);
        spin(1000);
    }
    EXPECT_EQ(prof.boundSlot(), nullptr);
    EXPECT_EQ(prof.currentPhaseOfRole("ghost"), nullptr);

    // A following session starts from zero — nothing leaked in.
    ASSERT_TRUE(prof.beginSession());
    prof.registerThread("clean");
    const ProfileReport report = prof.endSession();
    ASSERT_EQ(report.workers.size(), 1u);
    for (const auto &p : report.workers[0].phases)
        EXPECT_EQ(p.count, 0u) << p.name;
    EXPECT_TRUE(report.workers[0].paths.empty());
}

TEST(Profiler, SecondConcurrentSessionIsRefused)
{
    Profiler &prof = Profiler::instance();
    ASSERT_TRUE(prof.beginSession());
    EXPECT_FALSE(prof.beginSession());
    const ProfileReport report = prof.endSession();
    EXPECT_TRUE(report.enabled);
    ASSERT_FALSE(prof.active());
}

TEST(Profiler, CurrentPhaseIsLiveDuringSession)
{
    Profiler &prof = Profiler::instance();
    ASSERT_TRUE(prof.beginSession());
    prof.registerThread("live");
    EXPECT_STREQ(prof.currentPhaseOfRole("live"), "idle");
    {
        PhaseScope checkpoint(Phase::Checkpoint);
        EXPECT_STREQ(prof.currentPhaseOfRole("live"), "checkpoint");
        {
            PhaseScope rollback(Phase::RollbackReplay);
            EXPECT_STREQ(prof.currentPhaseOfRole("live"),
                         "rollback-replay");
        }
        EXPECT_STREQ(prof.currentPhaseOfRole("live"), "checkpoint");
    }
    EXPECT_STREQ(prof.currentPhaseOfRole("live"), "idle");
    EXPECT_EQ(prof.currentPhaseOfRole("nobody"), nullptr);
    prof.endSession();
}

TEST(Profiler, VerdictNamesTheDominantPhase)
{
    ProfileReport report;
    report.enabled = true;
    report.phaseTotals = {{"simulate", 900, 10},
                          {"wait-for-slack", 100, 5},
                          {"other", 0, 0}};
    std::string verdict = profileVerdict(report);
    EXPECT_NE(verdict.find("simulate-bound"), std::string::npos)
        << verdict;

    report.phaseTotals = {{"simulate", 200, 10},
                          {"wait-for-slack", 800, 5},
                          {"other", 0, 0}};
    verdict = profileVerdict(report);
    EXPECT_NE(verdict.find("wait-for-slack"), std::string::npos)
        << verdict;
    EXPECT_NE(verdict.find("bottleneck"), std::string::npos) << verdict;
}

TEST(Profiler, FoldedStacksExportShape)
{
    ProfileReport report;
    report.enabled = true;
    ProfileWorker w;
    w.role = "core 0";
    w.spanNs = 5'000'000;
    w.otherNs = 1'000'000;
    w.paths = {{"simulate", 3'000'000, 4},
               {"simulate;queue-push", 1'000'000, 2},
               {"sample", 100, 1}}; // sub-microsecond: skipped
    report.workers.push_back(w);

    std::ostringstream os;
    writeFoldedStacks(os, report);
    const std::string text = os.str();
    EXPECT_NE(text.find("core 0;simulate 3000"), std::string::npos)
        << text;
    EXPECT_NE(text.find("core 0;simulate;queue-push 1000"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("core 0;other 1000"), std::string::npos) << text;
    EXPECT_EQ(text.find("sample"), std::string::npos)
        << "sub-microsecond path must be skipped: " << text;

    // Every line is `stack count`: split on the last space, the tail
    // must be digits — the contract flamegraph.pl relies on.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        ASSERT_LT(sp + 1, line.size()) << line;
        for (std::size_t i = sp + 1; i < line.size(); ++i)
            EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
}

TEST(HwCountersTest, ForcedFallbackReportsReason)
{
    HwCounters hw;
    EXPECT_FALSE(hw.open(true));
    EXPECT_FALSE(hw.available());
    EXPECT_FALSE(hw.reason().empty());
    const HwCounterTotals totals = hw.read();
    EXPECT_FALSE(totals.available);
    EXPECT_EQ(totals.cycles, 0u);
}

TEST(HwCountersTest, OpenEitherWorksOrExplainsItself)
{
    HwCounters hw;
    const bool ok = hw.open();
    if (ok) {
        spin(500000);
        const HwCounterTotals totals = hw.read();
        EXPECT_TRUE(totals.available);
        EXPECT_GT(totals.cycles + totals.instructions, 0u)
            << "counters opened but counted nothing";
    } else {
        // No perf_event permission / syscall: the fallback must say why.
        EXPECT_FALSE(hw.reason().empty());
        EXPECT_FALSE(hw.read().available);
    }
    hw.close();
}

TEST(ProfilerEngine, RunAttributesSimulateTime)
{
    setQuietLogging(true);
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 300;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 64;
    config.engine.maxCommittedUops = 30000;
    config.engine.parallelHost = false;
    config.engine.obs.profile = true;

    const RunResult r = runSimulation(config);
    const ProfileReport &profile = r.forensics.profile;
    ASSERT_TRUE(profile.enabled);
    EXPECT_GT(profile.wallNs, 0u);
    ASSERT_FALSE(profile.workers.empty());

    const PhaseTotal *simulate =
        findTotal(profile.phaseTotals, "simulate");
    ASSERT_NE(simulate, nullptr);
    EXPECT_GT(simulate->ns, 0u);
    EXPECT_GT(simulate->count, 0u);

    for (const auto &w : profile.workers) {
        std::uint64_t attributed = 0;
        for (const auto &p : w.phases)
            attributed += p.ns;
        if (w.otherNs == 0)
            EXPECT_GE(attributed, w.spanNs) << w.role;
        else
            EXPECT_EQ(attributed + w.otherNs, w.spanNs) << w.role;
    }

    // The profiler disarms at end of run: later scopes are inert.
    EXPECT_FALSE(Profiler::instance().active());
}
