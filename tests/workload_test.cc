/**
 * @file
 * Tests for the workload kernels: structural validity, determinism,
 * sharing patterns and input-scale handling. Includes a parameterized
 * sweep over every registered kernel.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/address_space.hh"
#include "workload/kernels.hh"
#include "workload/trace.hh"
#include "util/logging.hh"

using namespace slacksim;

namespace {

WorkloadParams
smallParams(const std::string &kernel, unsigned threads = 8)
{
    WorkloadParams p;
    p.kernel = kernel;
    p.numThreads = threads;
    p.seed = 42;
    // Scale everything down so generation is fast in tests.
    p.bodies = 128;
    p.timesteps = 1;
    p.fftPoints = 1024;
    p.matrixN = 64;
    p.blockB = 8;
    p.molecules = 32;
    p.iters = 100;
    p.footprintBytes = 32 * 1024;
    return p;
}

/** Count barrier arrivals per (thread, id). */
std::map<SyncId, std::uint64_t>
barrierCounts(const TraceProgram &t)
{
    std::map<SyncId, std::uint64_t> counts;
    for (const auto &instr : t.instrs)
        if (instr.op == TraceOp::Barrier)
            ++counts[instr.sync];
    return counts;
}

} // namespace

class KernelSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelSweep, GeneratesValidWorkload)
{
    const Workload w = makeWorkload(smallParams(GetParam()));
    EXPECT_EQ(w.name, GetParam());
    EXPECT_EQ(w.threads.size(), 8u);
    EXPECT_GT(w.totalMicroOps(), 0u);
    // validateWorkload already ran inside makeWorkload; re-run to be
    // explicit that the structural invariants hold.
    validateWorkload(w);
}

TEST_P(KernelSweep, DeterministicAcrossRegenerations)
{
    const Workload a = makeWorkload(smallParams(GetParam()));
    const Workload b = makeWorkload(smallParams(GetParam()));
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        const auto &ta = a.threads[t].instrs;
        const auto &tb = b.threads[t].instrs;
        ASSERT_EQ(ta.size(), tb.size()) << "thread " << t;
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].op, tb[i].op);
            EXPECT_EQ(ta[i].addr, tb[i].addr);
            EXPECT_EQ(ta[i].count, tb[i].count);
            EXPECT_EQ(ta[i].sync, tb[i].sync);
        }
    }
}

TEST_P(KernelSweep, BarrierArrivalsMatchAcrossThreads)
{
    const Workload w = makeWorkload(smallParams(GetParam()));
    const auto reference = barrierCounts(w.threads[0]);
    for (std::size_t t = 1; t < w.threads.size(); ++t)
        EXPECT_EQ(barrierCounts(w.threads[t]), reference)
            << "thread " << t;
}

TEST_P(KernelSweep, WorksWithOtherThreadCounts)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        const Workload w =
            makeWorkload(smallParams(GetParam(), threads));
        EXPECT_EQ(w.threads.size(), threads);
        validateWorkload(w);
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, SplashNamesRegistered)
{
    const auto names = workloadNames();
    for (const auto &splash : splashNames()) {
        EXPECT_NE(std::find(names.begin(), names.end(), splash),
                  names.end())
            << splash;
    }
}

TEST(WorkloadRegistry, PaperInputScalesGenerate)
{
    // Table 1 of the paper: Barnes 1024 bodies, LU 256x256, Water 216
    // molecules (FFT 64K is exercised at 16K by default; the full 64K
    // works but is slow for a unit test).
    WorkloadParams p;
    p.numThreads = 8;

    p.kernel = "barnes";
    p.bodies = 1024;
    p.timesteps = 1;
    EXPECT_GT(makeWorkload(p).totalMicroOps(), 100000u);

    p = WorkloadParams{};
    p.numThreads = 8;
    p.kernel = "water";
    p.molecules = 216;
    EXPECT_GT(makeWorkload(p).totalMicroOps(), 100000u);
}

TEST(WorkloadTrace, BuilderCoalescesCompute)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.compute(3);
    b.compute(4);
    b.load(0x1000, 2);
    b.compute(5);
    b.end();
    // compute(3)+compute(4) coalesce; the dependent compute after the
    // load stays separate; the trailing compute(5) merges into it.
    ASSERT_EQ(prog.instrs.size(), 4u);
    EXPECT_EQ(prog.instrs[0].op, TraceOp::Compute);
    EXPECT_EQ(prog.instrs[0].count, 7u);
    EXPECT_EQ(prog.instrs[1].op, TraceOp::Load);
    EXPECT_EQ(prog.instrs[2].op, TraceOp::Compute);
    EXPECT_EQ(prog.instrs[2].count, 7u);
    EXPECT_TRUE(prog.instrs[2].flags & traceFlagDependsOnLoad);
    EXPECT_EQ(prog.totalMicroOps(), 7u + 1 + 7);
}

TEST(WorkloadTrace, MicroOpAccounting)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.lock(0);
    b.store(0x40);
    b.unlock(0);
    b.barrier(0);
    b.end();
    EXPECT_EQ(prog.totalMicroOps(), 4u);
}

TEST(WorkloadSharing, FalseShareTargetsSameLines)
{
    WorkloadParams p = smallParams("falseshare", 4);
    const Workload w = makeWorkload(p);
    // Every thread's store addresses must fall within the same four
    // cache lines.
    std::set<Addr> lines;
    for (const auto &t : w.threads)
        for (const auto &i : t.instrs)
            if (i.op == TraceOp::Store)
                lines.insert(i.addr & ~Addr{63});
    EXPECT_LE(lines.size(), 4u);
}

TEST(WorkloadSharing, StreamIsFullyPrivate)
{
    WorkloadParams p = smallParams("stream", 4);
    const Workload w = makeWorkload(p);
    std::vector<std::set<Addr>> lines(w.threads.size());
    for (std::size_t t = 0; t < w.threads.size(); ++t)
        for (const auto &i : w.threads[t].instrs)
            if (i.op == TraceOp::Load || i.op == TraceOp::Store)
                lines[t].insert(i.addr & ~Addr{63});
    for (std::size_t a = 0; a < lines.size(); ++a) {
        for (std::size_t b = a + 1; b < lines.size(); ++b) {
            for (Addr line : lines[a])
                EXPECT_EQ(lines[b].count(line), 0u)
                    << "line shared between threads " << a << "," << b;
        }
    }
}

TEST(WorkloadSharing, FftTransposeReadsRemoteRows)
{
    WorkloadParams p = smallParams("fft", 4);
    const Workload w = makeWorkload(p);
    // During the transpose phases a thread must read lines that other
    // threads write during their row FFTs: count distinct load lines
    // per thread and verify substantial overlap across threads.
    std::set<Addr> t0_loads, t1_stores;
    for (const auto &i : w.threads[0].instrs)
        if (i.op == TraceOp::Load)
            t0_loads.insert(i.addr & ~Addr{63});
    for (const auto &i : w.threads[1].instrs)
        if (i.op == TraceOp::Store)
            t1_stores.insert(i.addr & ~Addr{63});
    std::size_t overlap = 0;
    for (Addr line : t0_loads)
        overlap += t1_stores.count(line);
    EXPECT_GT(overlap, 10u);
}

TEST(WorkloadSharing, WaterUsesPerMoleculeLocks)
{
    WorkloadParams p = smallParams("water", 4);
    p.molecules = 32;
    const Workload w = makeWorkload(p);
    EXPECT_EQ(w.numLocks, 33u); // one per molecule + global
    std::set<SyncId> used;
    for (const auto &t : w.threads)
        for (const auto &i : t.instrs)
            if (i.op == TraceOp::Lock)
                used.insert(i.sync);
    EXPECT_GT(used.size(), 16u); // most molecule locks touched
}

TEST(WorkloadSharing, BarnesEmitsTreeLocksAndIrregularLoads)
{
    WorkloadParams p = smallParams("barnes", 4);
    const Workload w = makeWorkload(p);
    std::uint64_t locks = 0, loads = 0;
    for (const auto &t : w.threads) {
        for (const auto &i : t.instrs) {
            locks += i.op == TraceOp::Lock ? 1 : 0;
            loads += i.op == TraceOp::Load ? 1 : 0;
        }
    }
    EXPECT_GT(locks, 100u); // one per tree insertion at least
    EXPECT_GT(loads, 1000u);
}

TEST(WorkloadScaling, ComputeGrainScalesWork)
{
    WorkloadParams p1 = smallParams("lu", 4);
    WorkloadParams p4 = p1;
    p4.computeGrain = 4;
    const auto w1 = makeWorkload(p1);
    const auto w4 = makeWorkload(p4);
    EXPECT_GT(w4.totalMicroOps(), 2 * w1.totalMicroOps());
}

TEST(WorkloadScaling, UnknownKernelIsFatal)
{
    WorkloadParams p;
    p.kernel = "nonsense";
    EXPECT_DEATH(
        {
            setQuietLogging(true);
            makeWorkload(p);
        },
        "unknown workload kernel");
}

TEST(WorkloadScaling, FftRejectsNonPowerOfFour)
{
    WorkloadParams p = smallParams("fft");
    p.fftPoints = 1000;
    EXPECT_DEATH(makeWorkload(p), "power of 4");
}
