/**
 * @file
 * End-to-end engine tests: determinism of the cycle-by-cycle gold
 * standard, serial/parallel equivalence, slack-bound enforcement,
 * violation behavior across schemes, and run-control (uop budgets,
 * trace completion). Parameterized sweeps serve as property tests.
 */

#include <gtest/gtest.h>

#include "core/run.hh"
#include "workload/kernels.hh"

using namespace slacksim;

namespace {

/** A small, fully deterministic base configuration. */
SimConfig
baseConfig(const std::string &kernel, SchemeKind scheme,
           bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 300;
    config.workload.bodies = 128;
    config.workload.timesteps = 1;
    config.workload.fftPoints = 1024;
    config.workload.matrixN = 32;
    config.workload.blockB = 8;
    config.workload.molecules = 16;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = scheme;
    config.engine.parallelHost = parallel_host;
    return config;
}

/** Equality of everything that must be bit-identical between runs. */
void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.globalCycles, b.globalCycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.violations.busViolations, b.violations.busViolations);
    EXPECT_EQ(a.violations.mapViolations, b.violations.mapViolations);
    EXPECT_EQ(a.coreTotal.l1dHits, b.coreTotal.l1dHits);
    EXPECT_EQ(a.coreTotal.l1dMisses, b.coreTotal.l1dMisses);
    EXPECT_EQ(a.coreTotal.l1iMisses, b.coreTotal.l1iMisses);
    EXPECT_EQ(a.uncore.busRequests, b.uncore.busRequests);
    EXPECT_EQ(a.uncore.l2Hits, b.uncore.l2Hits);
    EXPECT_EQ(a.uncore.l2Misses, b.uncore.l2Misses);
    EXPECT_EQ(a.uncore.lockAcquires, b.uncore.lockAcquires);
    EXPECT_EQ(a.uncore.barrierEpisodes, b.uncore.barrierEpisodes);
    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        EXPECT_EQ(a.perCore[c].committedInstrs,
                  b.perCore[c].committedInstrs)
            << "core " << c;
    }
}

} // namespace

TEST(EngineCC, SerialIsDeterministic)
{
    const auto config =
        baseConfig("falseshare", SchemeKind::CycleByCycle, false);
    expectSameSimulation(runSimulation(config), runSimulation(config));
}

TEST(EngineCC, ParallelMatchesSerialGoldStandard)
{
    for (const std::string kernel :
         {"falseshare", "pingpong", "uniform"}) {
        const auto serial =
            runSimulation(baseConfig(kernel, SchemeKind::CycleByCycle,
                                     false));
        const auto parallel =
            runSimulation(baseConfig(kernel, SchemeKind::CycleByCycle,
                                     true));
        SCOPED_TRACE(kernel);
        expectSameSimulation(serial, parallel);
    }
}

TEST(EngineCC, NoViolationsEver)
{
    for (const std::string kernel : {"falseshare", "uniform", "fft"}) {
        auto config = baseConfig(kernel, SchemeKind::CycleByCycle, true);
        config.engine.maxCommittedUops = 50000;
        const auto r = runSimulation(config);
        SCOPED_TRACE(kernel);
        EXPECT_EQ(r.violations.total(), 0u);
        // Mid-round, a core that finished cycle T coexists with one
        // that hasn't: CC clocks may instantaneously differ by 1.
        EXPECT_LE(r.host.maxObservedSlack, 1u);
    }
}

TEST(EngineCompletion, AllUopsCommitWithoutBudget)
{
    for (const bool parallel : {false, true}) {
        auto config =
            baseConfig("pingpong", SchemeKind::CycleByCycle, parallel);
        const Workload w = makeWorkload(config.workload);
        const auto r = runSimulation(config);
        SCOPED_TRACE(parallel ? "parallel" : "serial");
        EXPECT_EQ(r.committedUops, w.totalMicroOps());
        // pingpong: T threads x iters lock/unlock pairs + barriers.
        EXPECT_EQ(r.uncore.lockAcquires, 8u * 300u);
        EXPECT_EQ(r.uncore.barrierEpisodes, 2u);
    }
}

TEST(EngineBudget, StopsNearUopLimit)
{
    auto config = baseConfig("uniform", SchemeKind::Bounded, false);
    config.workload.iters = 20000; // trace far larger than the budget
    config.engine.maxCommittedUops = 20000;
    const auto r = runSimulation(config);
    EXPECT_GE(r.committedUops, 20000u);
    // Allowed overshoot: one burst per core.
    EXPECT_LE(r.committedUops, 20000u + 8u * 64u * 8u);
}

class SlackBoundSweep
    : public ::testing::TestWithParam<std::tuple<Tick, bool>>
{
};

TEST_P(SlackBoundSweep, BoundIsRespected)
{
    const auto [bound, parallel] = GetParam();
    auto config = baseConfig("falseshare", SchemeKind::Bounded, parallel);
    config.engine.slackBound = bound;
    const auto r = runSimulation(config);
    // Serial observation is exact; the parallel manager's sweep over
    // the local clocks is racy by a few cycles, so allow skew there.
    const Tick margin = parallel ? 4 : 1;
    EXPECT_LE(r.host.maxObservedSlack, bound + margin)
        << "slack bound " << bound << " exceeded";
    EXPECT_GT(r.committedUops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, SlackBoundSweep,
    ::testing::Combine(::testing::Values<Tick>(1, 2, 5, 10, 50, 200),
                       ::testing::Bool()));

TEST(EngineSlack, SerialBoundedIsDeterministic)
{
    auto config = baseConfig("falseshare", SchemeKind::Bounded, false);
    config.engine.slackBound = 20;
    expectSameSimulation(runSimulation(config), runSimulation(config));
}

TEST(EngineSlack, ViolationsGrowWithBound)
{
    auto small = baseConfig("falseshare", SchemeKind::Bounded, false);
    small.engine.slackBound = 1;
    auto large = small;
    large.engine.slackBound = 100;
    const auto r_small = runSimulation(small);
    const auto r_large = runSimulation(large);
    EXPECT_GT(r_large.violations.total(), r_small.violations.total());
}

TEST(EngineSlack, UnboundedCompletesAndDrifts)
{
    auto config = baseConfig("uniform", SchemeKind::Unbounded, true);
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
}

TEST(EngineSlack, QuantumViolationsGrowWithQuantum)
{
    auto q1 = baseConfig("falseshare", SchemeKind::Quantum, false);
    q1.engine.quantum = 1;
    auto q64 = q1;
    q64.engine.quantum = 64;
    const auto r1 = runSimulation(q1);
    const auto r64 = runSimulation(q64);
    EXPECT_LE(r1.violations.total(), r64.violations.total());
    EXPECT_LE(r1.host.maxObservedSlack, 1u);
    EXPECT_LE(r64.host.maxObservedSlack, 64u);
}

TEST(EngineAdaptive, ThrottlesTowardTarget)
{
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 3000;
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.violationBand = 0.05;
    config.engine.adaptive.epochCycles = 500;
    config.engine.adaptive.initialBound = 256;
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.slackAdjustments, 0u);
    // Started far too optimistic: the controller must have pulled the
    // bound down hard.
    EXPECT_LT(r.finalSlackBound, 256u);
    // The cumulative rate should land near the target (generous
    // tolerance: early transient cycles are included).
    EXPECT_LT(r.violationRate(), 0.02);
}

TEST(EngineAdaptive, GrowsBoundWhenQuiet)
{
    // A workload with almost no sharing: violations are rare, so the
    // bound should ramp up toward the max.
    auto config = baseConfig("stream", SchemeKind::Adaptive, false);
    config.workload.iters = 2;
    config.workload.footprintBytes = 32 * 1024;
    config.engine.adaptive.targetViolationRate = 0.05;
    config.engine.adaptive.epochCycles = 200;
    config.engine.adaptive.initialBound = 2;
    config.engine.adaptive.maxBound = 512;
    const auto r = runSimulation(config);
    EXPECT_GT(r.finalSlackBound, 2u);
}

TEST(EngineSchemes, AllSchemesCompleteOnAllSplashKernels)
{
    for (const auto &kernel : splashNames()) {
        const auto base = baseConfig(kernel, SchemeKind::CycleByCycle,
                                     true);
        const std::uint64_t trace_uops =
            makeWorkload(base.workload).totalMicroOps();
        for (const SchemeKind scheme :
             {SchemeKind::CycleByCycle, SchemeKind::Quantum,
              SchemeKind::Bounded, SchemeKind::Unbounded,
              SchemeKind::Adaptive}) {
            auto config = baseConfig(kernel, scheme, true);
            config.engine.maxCommittedUops = 20000;
            const auto r = runSimulation(config);
            SCOPED_TRACE(kernel + std::string("/") +
                         schemeName(scheme));
            EXPECT_GE(r.committedUops,
                      std::min<std::uint64_t>(20000, trace_uops));
            EXPECT_GT(r.execCycles, 0u);
        }
    }
}

TEST(EngineSlack, SlackExecTimeErrorIsBounded)
{
    // Slack distorts simulated time; the error against the gold
    // standard must stay moderate for small bounds (the paper's
    // single-digit-percent observation).
    auto cc = baseConfig("uniform", SchemeKind::CycleByCycle, false);
    cc.engine.maxCommittedUops = 40000;
    auto s4 = cc;
    s4.engine.scheme = SchemeKind::Bounded;
    s4.engine.slackBound = 4;
    const auto r_cc = runSimulation(cc);
    const auto r_s4 = runSimulation(s4);
    const double err =
        std::abs(static_cast<double>(r_s4.execCycles) -
                 static_cast<double>(r_cc.execCycles)) /
        static_cast<double>(r_cc.execCycles);
    EXPECT_LT(err, 0.15);
}

TEST(EngineConfigValidation, RejectsBadConfigs)
{
    SimConfig config;
    config.workload.numThreads = 4; // != numCores (8)
    EXPECT_DEATH(runSimulation(config), "must match");

    SimConfig bad_bound;
    bad_bound.workload.numThreads = bad_bound.target.numCores;
    bad_bound.engine.scheme = SchemeKind::Bounded;
    bad_bound.engine.slackBound = 0;
    EXPECT_DEATH(runSimulation(bad_bound), "slackBound");
}

TEST(EngineCoreCounts, WorksWithOneAndSixteenCores)
{
    for (const std::uint32_t cores : {1u, 2u, 16u}) {
        SimConfig config;
        config.target.numCores = cores;
        config.workload.kernel = "uniform";
        config.workload.numThreads = cores;
        config.workload.iters = 200;
        config.engine.scheme = SchemeKind::Bounded;
        config.engine.slackBound = 8;
        const auto r = runSimulation(config);
        SCOPED_TRACE(cores);
        EXPECT_EQ(r.perCore.size(), cores);
        EXPECT_GT(r.committedUops, 0u);
    }
}

TEST(EngineLaxP2P, CompletesOnBothHosts)
{
    for (const bool parallel : {false, true}) {
        auto config =
            baseConfig("falseshare", SchemeKind::LaxP2P, parallel);
        config.engine.slackBound = 10;
        config.engine.p2pShufflePeriod = 200;
        const Workload w = makeWorkload(config.workload);
        const auto r = runSimulation(config);
        SCOPED_TRACE(parallel ? "parallel" : "serial");
        EXPECT_EQ(r.committedUops, w.totalMicroOps());
    }
}

TEST(EngineLaxP2P, SerialIsDeterministic)
{
    auto config = baseConfig("uniform", SchemeKind::LaxP2P, false);
    config.engine.slackBound = 8;
    expectSameSimulation(runSimulation(config), runSimulation(config));
}

TEST(EngineLaxP2P, ViolationsBetweenCcAndUnbounded)
{
    auto p2p = baseConfig("falseshare", SchemeKind::LaxP2P, false);
    p2p.engine.slackBound = 8;
    auto cc = baseConfig("falseshare", SchemeKind::CycleByCycle, false);
    const auto r_p2p = runSimulation(p2p);
    const auto r_cc = runSimulation(cc);
    EXPECT_EQ(r_cc.violations.total(), 0u);
    EXPECT_GT(r_p2p.violations.total(), 0u);
}

TEST(EngineLaxP2P, PairwiseSlackAllowsLargerGlobalSpread)
{
    // With chains of peers the max global spread may exceed the
    // pairwise bound — the defining difference vs Bounded.
    auto config = baseConfig("uniform", SchemeKind::LaxP2P, false);
    config.workload.iters = 2000;
    config.engine.slackBound = 4;
    config.engine.p2pShufflePeriod = 100;
    const auto r = runSimulation(config);
    // Sanity only: pairwise bound times core count is a hard ceiling.
    EXPECT_LE(r.host.maxObservedSlack, 4u * 8u + 8u);
}

TEST(EngineStress, TinyQueuesStillComplete)
{
    // Exercise the OutQ backpressure and InQ overflow paths hard.
    auto config = baseConfig("falseshare", SchemeKind::Bounded, true);
    config.engine.slackBound = 50;
    config.engine.queueCapacity = 64;
    config.engine.burstCycles = 8;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
}

TEST(EngineExtraKernels, OceanAndRadixRunUnderAllHosts)
{
    for (const std::string kernel : {"ocean", "radix"}) {
        for (const bool parallel : {false, true}) {
            auto config =
                baseConfig(kernel, SchemeKind::Bounded, parallel);
            config.workload.iters = 2048;   // radix keys
            config.workload.matrixN = 64;   // ocean grid
            config.workload.timesteps = 2;  // ocean sweeps
            config.engine.maxCommittedUops = 25000;
            const auto r = runSimulation(config);
            SCOPED_TRACE(kernel + (parallel ? "/par" : "/ser"));
            EXPECT_GT(r.committedUops, 10000u);
        }
    }
}

TEST(EngineWarmup, DiscardsInitializationStatistics)
{
    for (const bool parallel : {false, true}) {
        auto full = baseConfig("uniform", SchemeKind::Bounded, parallel);
        full.workload.iters = 4000;
        auto warm = full;
        warm.engine.warmupUops = 40000;
        const auto r_full = runSimulation(full);
        const auto r_warm = runSimulation(warm);
        SCOPED_TRACE(parallel ? "parallel" : "serial");
        // The warm run reports only post-warmup committed work.
        EXPECT_LT(r_warm.committedUops, r_full.committedUops);
        EXPECT_GE(r_full.committedUops,
                  r_warm.committedUops + 30000);
        // Cold-start L1 misses are excluded after the reset.
        EXPECT_LT(r_warm.coreTotal.l1dMisses,
                  r_full.coreTotal.l1dMisses);
    }
}

TEST(EngineAdaptive, WindowedRateControllerRunsAndAdjusts)
{
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 3000;
    config.engine.adaptive.windowedRate = true;
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;
    config.engine.adaptive.initialBound = 256;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.slackAdjustments, 0u);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    // Regression guard for the unbudgeted-idle-skip bug: simulated
    // time may be distorted by slack (falseshare saturates the bus),
    // but must not explode by orders of magnitude.
    auto cc_config =
        baseConfig("falseshare", SchemeKind::CycleByCycle, false);
    cc_config.workload.iters = 3000;
    const auto r_cc = runSimulation(cc_config);
    EXPECT_LT(r.execCycles, 10 * r_cc.execCycles);
}

TEST(EngineRecovery, RollbackStormWalksTheDegradationLadder)
{
    // Speculative run tuned to roll back constantly: an impossible
    // violation-rate target keeps requesting rollbacks, the storm
    // detector demotes to adaptive, and the still-pinned controller
    // then demotes to fixed slack=1. Every rung must be logged and
    // the run must still complete.
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 2000;
    config.engine.adaptive.targetViolationRate = 1e-6;
    config.engine.adaptive.epochCycles = 500;
    config.engine.adaptive.initialBound = 64;
    config.engine.adaptive.minBound = 1;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;
    config.engine.recovery.stormThreshold = 3;
    config.engine.recovery.stormWindow = 20000;
    config.engine.recovery.pinnedEpochLimit = 4;
    config.engine.recovery.repromoteAfter = 0; // never re-promote

    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    EXPECT_EQ(r.degradationLevel, "fixed-slack");
    EXPECT_GE(r.demotions, 2u);
    EXPECT_EQ(r.repromotions, 0u);

    const auto &transitions = r.forensics.decisions.transitions();
    ASSERT_GE(transitions.size(), 2u);
    bool saw_storm = false, saw_pinned = false;
    for (const auto &t : transitions) {
        if (std::string(t.reason) == "rollback-storm") {
            EXPECT_STREQ(t.from, "speculative");
            EXPECT_STREQ(t.to, "adaptive");
            saw_storm = true;
        } else if (std::string(t.reason) == "pinned-at-min") {
            EXPECT_STREQ(t.from, "adaptive");
            EXPECT_STREQ(t.to, "fixed-slack");
            saw_pinned = true;
        }
    }
    EXPECT_TRUE(saw_storm) << "missing speculative->adaptive demotion";
    EXPECT_TRUE(saw_pinned) << "missing adaptive->fixed-slack demotion";
    // Demoted pacing pins the bound at the quantum-equivalent floor.
    EXPECT_EQ(r.finalSlackBound, 1u);
}

TEST(EngineRecovery, RepromotesAfterBackoffElapses)
{
    // Same storm setup, but with a short re-promotion backoff the
    // ladder must climb back up at least once and log the attempt.
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 3000;
    config.engine.adaptive.targetViolationRate = 1e-6;
    config.engine.adaptive.epochCycles = 500;
    config.engine.adaptive.initialBound = 64;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;
    config.engine.recovery.stormThreshold = 3;
    config.engine.recovery.stormWindow = 20000;
    config.engine.recovery.repromoteAfter = 5000;

    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    EXPECT_GE(r.demotions, 1u);
    EXPECT_GE(r.repromotions, 1u);
    bool saw_repromotion = false;
    for (const auto &t : r.forensics.decisions.transitions()) {
        if (std::string(t.reason) == "backoff-elapsed")
            saw_repromotion = true;
    }
    EXPECT_TRUE(saw_repromotion);
}

TEST(EngineRecovery, DisabledDetectionLeavesRunsUntouched)
{
    // All recovery knobs off (the defaults): a speculative run storms
    // away exactly as before the ladder existed.
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 1000;
    config.engine.adaptive.targetViolationRate = 0.05;
    config.engine.adaptive.initialBound = 64;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;

    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    EXPECT_EQ(r.degradationLevel, "speculative");
    EXPECT_EQ(r.demotions, 0u);
}
