/**
 * @file
 * Epoch metrics sampler tests: the sampler's cadence and CSV shape,
 * the adaptive-bound series converging toward the target band on a
 * micro workload, and a speculative run's series containing the
 * rollback -> replay -> resume transition.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::obs;

namespace {

/** Parse a CSV file into header + rows of string cells. */
struct Csv
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    std::string schemaLine;

    explicit Csv(const std::string &path)
    {
        std::ifstream in(path);
        std::string line;
        bool first = true;
        while (std::getline(in, line)) {
            if (!line.empty() && line[0] == '#') {
                schemaLine = line;
                continue;
            }
            std::vector<std::string> cells;
            std::stringstream ss(line);
            std::string cell;
            while (std::getline(ss, cell, ','))
                cells.push_back(cell);
            if (first) {
                header = cells;
                first = false;
            } else if (!cells.empty()) {
                rows.push_back(cells);
            }
        }
    }

    std::size_t
    column(const std::string &name) const
    {
        for (std::size_t i = 0; i < header.size(); ++i)
            if (header[i] == name)
                return i;
        ADD_FAILURE() << "no column " << name;
        return 0;
    }

    std::vector<double>
    numbers(const std::string &name) const
    {
        const std::size_t col = column(name);
        std::vector<double> out;
        for (const auto &row : rows)
            out.push_back(std::stod(row.at(col)));
        return out;
    }
};

MetricsRow
rowAt(Tick global, Tick bound)
{
    MetricsRow row;
    row.global = global;
    row.minLocal = global;
    row.maxLocal = global;
    row.slackBound = bound;
    return row;
}

} // namespace

TEST(MetricsSampler, CadenceAndWindowedRates)
{
    MetricsSampler sampler(100);
    EXPECT_TRUE(sampler.due(0));
    MetricsRow r0 = rowAt(0, 8);
    sampler.push(0, r0);
    EXPECT_FALSE(sampler.due(99));
    EXPECT_TRUE(sampler.due(100));

    MetricsRow r1 = rowAt(200, 8);
    r1.busViolations = 40;
    r1.mapViolations = 10;
    sampler.push(200, r1);
    ASSERT_EQ(sampler.rows().size(), 2u);
    // 40 bus violations over the 200-cycle window.
    EXPECT_DOUBLE_EQ(sampler.rows()[1].busViolRate, 0.2);
    EXPECT_DOUBLE_EQ(sampler.rows()[1].mapViolRate, 0.05);

    MetricsRow r2 = rowAt(300, 8);
    r2.busViolations = 40; // no new violations this window
    r2.mapViolations = 10;
    sampler.push(300, r2);
    EXPECT_DOUBLE_EQ(sampler.rows()[2].busViolRate, 0.0);
}

TEST(MetricsSampler, CsvShape)
{
    MetricsSampler sampler(10);
    MetricsRow row = rowAt(0, 4);
    row.coreLocal = {0, 0};
    sampler.push(0, row);
    MetricsRow row2 = rowAt(10, 4);
    row2.coreLocal = {10, 12};
    sampler.push(10, row2);

    std::ostringstream os;
    sampler.writeCsv(os);
    const std::string text = os.str();
    // Schema comment first, then the header.
    EXPECT_EQ(text.rfind("# schema=", 0), 0u);
    EXPECT_NE(text.find(MetricsSampler::csvSchema), std::string::npos);
    EXPECT_NE(text.find("wall_ns,global_cycle,"), std::string::npos);
    EXPECT_NE(text.find("slack_bound"), std::string::npos);
    for (const char *col : {"core0_local", "core0_lag", "core0_inq",
                            "core0_outq", "core1_local", "core1_lag",
                            "core1_inq", "core1_outq"})
        EXPECT_NE(text.find(col), std::string::npos) << col;
    // Schema comment + header + 2 data lines.
    int lines = 0;
    for (const char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);
}

TEST(MetricsSampler, SlackLagColumnIsDriftAboveSlowestCore)
{
    MetricsSampler sampler(10);
    MetricsRow row = rowAt(100, 4);
    row.minLocal = 90;
    row.coreLocal = {90, 130};
    row.coreInQ = {3, 0};
    row.coreOutQ = {0, 7};
    sampler.push(100, row);

    const std::string path = testing::TempDir() + "obs_metrics_lag.csv";
    {
        std::ofstream os(path);
        sampler.writeCsv(os);
    }
    Csv csv(path);
    EXPECT_NE(csv.schemaLine.find(MetricsSampler::csvSchema),
              std::string::npos);
    // The straggler lags by 0; the leader by (130 - 90).
    EXPECT_EQ(csv.numbers("core0_lag").at(0), 0.0);
    EXPECT_EQ(csv.numbers("core1_lag").at(0), 40.0);
    EXPECT_EQ(csv.numbers("core0_inq").at(0), 3.0);
    EXPECT_EQ(csv.numbers("core1_outq").at(0), 7.0);
    std::remove(path.c_str());
}

TEST(MetricsSeries, AdaptiveBoundDescendsTowardTargetBand)
{
    setQuietLogging(true);
    const std::string path =
        testing::TempDir() + "obs_metrics_adaptive.csv";

    // The uniform micro kernel violates constantly; starting the
    // controller way above any sustainable bound must produce a
    // falling slack-bound series.
    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 4;
    config.workload.numThreads = 4;
    config.workload.iters = 4000;
    config.workload.footprintBytes = 32 * 1024;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 1e-4;
    config.engine.adaptive.violationBand = 0.05;
    config.engine.adaptive.initialBound = 512;
    config.engine.adaptive.epochCycles = 500;
    config.engine.maxCommittedUops = 40000;
    config.engine.parallelHost = false;
    config.engine.obs.metricsOut = path;
    const RunResult r = runSimulation(config);

    Csv csv(path);
    ASSERT_GE(csv.rows.size(), 3u);
    const auto bounds = csv.numbers("slack_bound");
    EXPECT_EQ(static_cast<Tick>(bounds.front()), 512u);
    // The series must actually move...
    double lo = bounds.front(), hi = bounds.front();
    for (const double b : bounds) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    EXPECT_LT(lo, hi) << "bound never adjusted";
    // ...and end far below the deliberately absurd starting bound.
    EXPECT_LT(bounds.back(), 512.0);
    EXPECT_EQ(static_cast<Tick>(bounds.back()), r.finalSlackBound);

    // Sanity on the companion columns.
    const auto globals = csv.numbers("global_cycle");
    for (std::size_t i = 1; i < globals.size(); ++i)
        EXPECT_GE(globals[i], globals[i - 1]);

    std::remove(path.c_str());
}

TEST(MetricsSeries, SpeculativeRunShowsRollbackReplayResume)
{
    setQuietLogging(true);
    const std::string path =
        testing::TempDir() + "obs_metrics_spec.csv";

    // Bounded slack 32 on the sharing-heavy micro kernel guarantees
    // violations; speculative checkpoints then force at least one
    // rollback -> cycle-by-cycle replay -> resume sequence, and the
    // forced samples at both edges make it visible in the series.
    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 4;
    config.workload.numThreads = 4;
    config.workload.iters = 4000;
    config.workload.footprintBytes = 32 * 1024;
    config.workload.sharedFraction = 0.5;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 32;
    config.engine.maxCommittedUops = 30000;
    config.engine.parallelHost = false;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;
    config.engine.obs.metricsOut = path;
    const RunResult r = runSimulation(config);
    ASSERT_GT(r.host.rollbacks, 0u) << "workload caused no rollback";

    Csv csv(path);
    const auto replay = csv.numbers("replay");
    const auto rollbacks = csv.numbers("rollbacks");
    ASSERT_EQ(replay.size(), rollbacks.size());

    // Find a rollback edge: the rollback counter steps up and the
    // sampler is inside the replay window...
    std::size_t edge = replay.size();
    for (std::size_t i = 1; i < replay.size(); ++i) {
        if (rollbacks[i] > rollbacks[i - 1] && replay[i] == 1.0) {
            edge = i;
            break;
        }
    }
    ASSERT_LT(edge, replay.size()) << "no rollback->replay edge";
    // ...and after it, a sample where replay ended (resume).
    bool resumed = false;
    for (std::size_t i = edge + 1; i < replay.size(); ++i)
        resumed |= replay[i] == 0.0;
    EXPECT_TRUE(resumed) << "replay window never closed";

    std::remove(path.c_str());
}
