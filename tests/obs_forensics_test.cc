/**
 * @file
 * Tests for the violation-forensics layer: the ViolationLedger's
 * attribution tables and snapshot participation, the ledger == counter
 * agreement on real runs, the adaptive decision chain, the uncore
 * counting-toggle semantics, and the flight recorder / stall watchdog.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/run.hh"
#include "obs/flight_recorder.hh"
#include "obs/forensics.hh"
#include "uncore/uncore.hh"
#include "util/snapshot.hh"

using namespace slacksim;
using obs::BandVerdict;
using obs::ViolationKind;
using obs::ViolationLedger;

namespace {

SimConfig
baseConfig(const std::string &kernel, SchemeKind scheme,
           bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 300;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = scheme;
    config.engine.parallelHost = parallel_host;
    return config;
}

/** Sum the ledger's pair matrix per kind. */
std::pair<std::uint64_t, std::uint64_t>
pairSums(const ViolationLedger &ledger)
{
    std::uint64_t bus = 0;
    std::uint64_t map = 0;
    for (const auto &p : ledger.nonzeroPairs()) {
        bus += p.bus;
        map += p.map;
    }
    return {bus, map};
}

/** Every invariant the ledger promises against the run's counters. */
void
expectLedgerConsistent(const RunResult &r)
{
    const ViolationLedger &ledger = r.forensics.ledger;
    EXPECT_EQ(ledger.busTotal(), r.violations.busViolations);
    EXPECT_EQ(ledger.mapTotal(), r.violations.mapViolations);
    const auto [bus, map] = pairSums(ledger);
    EXPECT_EQ(bus, ledger.busTotal());
    EXPECT_EQ(map, ledger.mapTotal());
    EXPECT_EQ(ledger.busSlack().count(), ledger.busTotal());
    EXPECT_EQ(ledger.mapSlack().count(), ledger.mapTotal());
    std::uint64_t bucketed = ledger.untrackedBuckets();
    for (const auto &o : ledger.topOffenders(~std::size_t(0)))
        bucketed += o.total();
    EXPECT_EQ(bucketed, ledger.total());
}

} // namespace

TEST(ViolationLedger, AttributesKindPairAndBucket)
{
    ViolationLedger ledger;
    ledger.reset(4);
    ledger.record(ViolationKind::Bus, 0x1000, 1, 2, 10);
    ledger.record(ViolationKind::Bus, 0x1000, 1, 2, 100);
    ledger.record(ViolationKind::Map, 0x1040, 3, invalidCore, 5);

    EXPECT_EQ(ledger.busTotal(), 2u);
    EXPECT_EQ(ledger.mapTotal(), 1u);
    EXPECT_EQ(ledger.total(), 3u);
    EXPECT_EQ(ledger.busSlack().count(), 2u);
    EXPECT_EQ(ledger.busSlack().max(), 100u);
    EXPECT_EQ(ledger.mapSlack().count(), 1u);

    const auto pairs = ledger.nonzeroPairs();
    ASSERT_EQ(pairs.size(), 2u);
    bool saw_bus_pair = false;
    bool saw_map_pair = false;
    for (const auto &p : pairs) {
        if (p.requester == 1 && p.prior == 2) {
            EXPECT_EQ(p.bus, 2u);
            EXPECT_EQ(p.map, 0u);
            saw_bus_pair = true;
        }
        if (p.requester == 3 && p.prior == invalidCore) {
            EXPECT_EQ(p.map, 1u);
            saw_map_pair = true;
        }
    }
    EXPECT_TRUE(saw_bus_pair);
    EXPECT_TRUE(saw_map_pair);

    // 0x1000 and 0x1040 are distinct 64-line buckets?  No: bucket =
    // line >> 6, so 0x1000 -> 0x40 and 0x1040 -> 0x41.
    const auto top = ledger.topOffenders(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].bucket, 0x1000u >> ViolationLedger::bucketShift);
    EXPECT_EQ(top[0].total(), 2u);
    EXPECT_EQ(top[1].total(), 1u);
    EXPECT_EQ(ledger.untrackedBuckets(), 0u);
}

TEST(ViolationLedger, TopOffendersDeterministicOrder)
{
    ViolationLedger ledger;
    ledger.reset(2);
    // Equal totals: ties must break by ascending bucket.
    ledger.record(ViolationKind::Bus, 0x2000, 0, 1, 1);
    ledger.record(ViolationKind::Bus, 0x1000, 0, 1, 1);
    ledger.record(ViolationKind::Map, 0x3000, 1, 0, 1);
    const auto top = ledger.topOffenders(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].bucket, 0x1000u >> ViolationLedger::bucketShift);
    EXPECT_EQ(top[1].bucket, 0x2000u >> ViolationLedger::bucketShift);
    EXPECT_EQ(top[2].bucket, 0x3000u >> ViolationLedger::bucketShift);
}

TEST(ViolationLedger, SaveRestoreRewindsEverything)
{
    ViolationLedger ledger;
    ledger.reset(2);
    ledger.record(ViolationKind::Bus, 0x1000, 0, 1, 7);
    ledger.record(ViolationKind::Map, 0x2000, 1, 0, 3);

    SnapshotWriter writer;
    ledger.save(writer);

    // Post-checkpoint divergence to be rolled back.
    ledger.record(ViolationKind::Bus, 0x9000, 1, 0, 99);
    ledger.record(ViolationKind::Map, 0x9000, 0, 1, 42);
    EXPECT_EQ(ledger.total(), 4u);

    const auto bytes = writer.release();
    SnapshotReader reader(bytes);
    ledger.restore(reader);
    EXPECT_TRUE(reader.exhausted());

    EXPECT_EQ(ledger.busTotal(), 1u);
    EXPECT_EQ(ledger.mapTotal(), 1u);
    EXPECT_EQ(ledger.busSlack().count(), 1u);
    EXPECT_EQ(ledger.busSlack().max(), 7u);
    const auto top = ledger.topOffenders(10);
    ASSERT_EQ(top.size(), 2u);
    for (const auto &o : top)
        EXPECT_NE(o.bucket, 0x9000u >> ViolationLedger::bucketShift);
    const auto [bus, map] = pairSums(ledger);
    EXPECT_EQ(bus, 1u);
    EXPECT_EQ(map, 1u);

    // Identical logical state must serialize to identical bytes
    // (deterministic snapshots are what makes checkpoint equality
    // checks in the engine tests meaningful).
    SnapshotWriter again;
    ledger.save(again);
    EXPECT_EQ(again.bytes(), bytes);
}

namespace {

BusMsg
busReq(MsgType type, CoreId src, Addr addr, Tick ts)
{
    BusMsg m;
    m.type = type;
    m.src = src;
    m.addr = addr;
    m.ts = ts;
    m.cache = CacheKind::Data;
    static SeqNum seq = 0;
    m.seq = seq++;
    return m;
}

} // namespace

TEST(UncoreForensics, CountingToggleKeepsMonitorAndLedgerConsistent)
{
    UncoreStats stats;
    ViolationStats violations;
    UncoreParams params;
    params.numCores = 4;
    params.l2.totalKb = 16;
    params.l2.ways = 4;
    params.l2.banks = 2;
    Uncore uncore(params, &stats, &violations);
    ViolationLedger ledger;
    ledger.reset(params.numCores);
    uncore.setLedger(&ledger);
    std::vector<Outbound> out;

    // Advance the bus monitor to 100, then trip it with ts=50.
    uncore.service(busReq(MsgType::GetS, 0, 0x1000, 100), out);
    auto r = uncore.service(busReq(MsgType::GetS, 1, 0x2000, 50), out);
    EXPECT_TRUE(r.busViolation);
    EXPECT_EQ(violations.busViolations, 1u);
    EXPECT_EQ(ledger.busTotal(), 1u);

    // Counting off (replay semantics): detection still reports the
    // violation to the caller and the monitors still advance on
    // in-order traffic, but neither the counters nor the ledger move.
    uncore.setViolationCounting(false);
    r = uncore.service(busReq(MsgType::GetS, 2, 0x3000, 60), out);
    EXPECT_TRUE(r.busViolation);
    EXPECT_EQ(violations.busViolations, 1u);
    EXPECT_EQ(ledger.busTotal(), 1u);
    // Monitor keeps advancing while counting is off...
    uncore.service(busReq(MsgType::GetS, 2, 0x3000, 200), out);

    // ...so when counting returns, detection picks up exactly where
    // the monitor is (ts=150 < 200 is a violation attributed to the
    // core that advanced the monitor to 200 — core 2).
    uncore.setViolationCounting(true);
    r = uncore.service(busReq(MsgType::GetS, 3, 0x4000, 150), out);
    EXPECT_TRUE(r.busViolation);
    EXPECT_EQ(violations.busViolations, 2u);
    EXPECT_EQ(ledger.busTotal(), 2u);
    bool found = false;
    for (const auto &p : ledger.nonzeroPairs()) {
        if (p.requester == 3) {
            EXPECT_EQ(p.prior, 2u);
            EXPECT_EQ(p.bus, 1u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ForensicsRun, LedgerMatchesViolationStatsSerial)
{
    auto config = baseConfig("falseshare", SchemeKind::Bounded, false);
    config.engine.slackBound = 256;
    config.engine.maxCommittedUops = 40000;
    const RunResult r = runSimulation(config);
    EXPECT_GT(r.violations.total(), 0u)
        << "config no longer produces violations; test is vacuous";
    expectLedgerConsistent(r);
}

TEST(ForensicsRun, LedgerMatchesViolationStatsParallel)
{
    auto config = baseConfig("falseshare", SchemeKind::Bounded, true);
    config.engine.slackBound = 256;
    config.engine.maxCommittedUops = 40000;
    const RunResult r = runSimulation(config);
    expectLedgerConsistent(r);
}

TEST(ForensicsRun, LedgerAttributionIdenticalAcrossManagerBanks)
{
    // Violations detected inside different global-map banks must land
    // in the one shared ledger with the same attribution the single-
    // bank layout produces: same totals, same (requester, prior)
    // pairs, same deterministic top-offender order. Inline host
    // pins the arrival order so the comparison is exact.
    auto one = baseConfig("falseshare", SchemeKind::Bounded, true);
    one.engine.slackBound = 256;
    one.engine.maxCommittedUops = 40000;
    one.engine.hostThreads = 1;
    one.engine.managerBanks = 1;
    auto four = one;
    four.engine.managerBanks = 4;

    const RunResult a = runSimulation(one);
    const RunResult b = runSimulation(four);
    EXPECT_GT(a.violations.total(), 0u)
        << "config no longer produces violations; test is vacuous";
    expectLedgerConsistent(a);
    expectLedgerConsistent(b);
    EXPECT_EQ(a.forensics.ledger.busTotal(),
              b.forensics.ledger.busTotal());
    EXPECT_EQ(a.forensics.ledger.mapTotal(),
              b.forensics.ledger.mapTotal());

    const auto pa = a.forensics.ledger.nonzeroPairs();
    const auto pb = b.forensics.ledger.nonzeroPairs();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].requester, pb[i].requester);
        EXPECT_EQ(pa[i].prior, pb[i].prior);
        EXPECT_EQ(pa[i].bus, pb[i].bus);
        EXPECT_EQ(pa[i].map, pb[i].map);
    }

    const auto oa = a.forensics.ledger.topOffenders(8);
    const auto ob = b.forensics.ledger.topOffenders(8);
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
        EXPECT_EQ(oa[i].bucket, ob[i].bucket);
        EXPECT_EQ(oa[i].bus, ob[i].bus);
        EXPECT_EQ(oa[i].map, ob[i].map);
    }
}

TEST(ForensicsRun, AdaptiveDecisionChainReplaysEveryBoundChange)
{
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 0.002;
    config.engine.adaptive.epochCycles = 500;
    config.engine.maxCommittedUops = 40000;
    const RunResult r = runSimulation(config);

    const auto &decisions = r.forensics.decisions.decisions();
    ASSERT_FALSE(decisions.empty());
    EXPECT_EQ(r.forensics.decisions.decisionsDropped(), 0u);

    std::uint64_t changes = 0;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const auto &d = decisions[i];
        if (i > 0) {
            EXPECT_EQ(d.oldBound, decisions[i - 1].newBound)
                << "decision chain broken at record " << i;
        }
        switch (d.verdict) {
          case BandVerdict::Hold:
            EXPECT_EQ(d.oldBound, d.newBound);
            break;
          case BandVerdict::Grow:
            EXPECT_GE(d.newBound, d.oldBound);
            break;
          case BandVerdict::Shrink:
            EXPECT_LE(d.newBound, d.oldBound);
            break;
          case BandVerdict::Restored:
            break;
        }
        if (d.newBound != d.oldBound &&
            d.verdict != BandVerdict::Restored) {
            ++changes;
        }
    }
    EXPECT_EQ(changes, r.host.slackAdjustments);
    EXPECT_EQ(decisions.back().newBound, r.finalSlackBound);
    EXPECT_EQ(decisions.front().oldBound,
              config.engine.adaptive.initialBound);
}

TEST(ForensicsRun, SpeculativeRollbackRewindsLedgerWithCounters)
{
    auto config = baseConfig("falseshare", SchemeKind::Adaptive, false);
    config.engine.adaptive.targetViolationRate = 1e-5; // forces rollbacks
    config.engine.adaptive.epochCycles = 500;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 2000;
    config.engine.maxCommittedUops = 30000;
    const RunResult r = runSimulation(config);
    expectLedgerConsistent(r);

    // The episode log must cover the host counters.
    std::uint64_t ckpts = 0;
    std::uint64_t rollbacks = 0;
    for (const auto &e : r.forensics.decisions.episodes()) {
        if (e.kind == obs::EpisodeKind::Checkpoint)
            ++ckpts;
        if (e.kind == obs::EpisodeKind::Rollback)
            ++rollbacks;
    }
    EXPECT_EQ(ckpts, r.host.checkpointsTaken);
    EXPECT_EQ(rollbacks, r.host.rollbacks);
}

TEST(FlightRecorder, RecentReturnsNewestOldestFirst)
{
    obs::FlightRecorder rec;
    EXPECT_TRUE(rec.recent(8).empty());
    for (Tick t = 1; t <= 40; ++t)
        rec.note(t % 2 ? "tick" : "tock", t);
    EXPECT_EQ(rec.headSeq(), 40u);
    const auto recent = rec.recent(4);
    ASSERT_EQ(recent.size(), 4u);
    EXPECT_EQ(recent.front().cycle, 37u);
    EXPECT_EQ(recent.back().cycle, 40u);
    EXPECT_STREQ(recent.back().name, "tock");
}

TEST(StallWatchdog, DumpsNamingTheStalledWorker)
{
    std::atomic<Tick> live{0};
    std::atomic<Tick> stuck{42};
    obs::StallWatchdog wd(50);
    const std::size_t w_live =
        wd.addWorker("live worker", &live, nullptr, true);
    wd.addWorker("stuck worker", &stuck, nullptr, true);
    wd.setProgressProbe([] { return std::string("probe-line"); });
    wd.start();

    // Keep the live worker moving; the stuck one never changes.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (wd.stallDumps() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        live.fetch_add(1, std::memory_order_relaxed);
        wd.note(w_live, "advance", live.load());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    wd.stop();

    ASSERT_GE(wd.stallDumps(), 1u);
    const std::string dump = wd.lastDump();
    EXPECT_NE(dump.find("stuck worker"), std::string::npos);
    EXPECT_NE(dump.find("STALLED"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos) << dump;
    EXPECT_NE(dump.find("probe-line"), std::string::npos);
    // The live worker must not be flagged.
    const auto live_at = dump.find("live worker");
    ASSERT_NE(live_at, std::string::npos);
    const auto live_line_end = dump.find('\n', live_at);
    EXPECT_EQ(dump.substr(live_at, live_line_end - live_at)
                  .find("STALLED"),
              std::string::npos);
}

TEST(StallWatchdog, FinishedWorkerNeverStalls)
{
    std::atomic<Tick> clock{7};
    std::atomic<bool> finished{true};
    obs::StallWatchdog wd(50);
    wd.addWorker("done worker", &clock, &finished, true);
    wd.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    wd.stop();
    EXPECT_EQ(wd.stallDumps(), 0u);
}

TEST(StallWatchdog, DumpNowWorksWithoutStall)
{
    std::atomic<Tick> clock{1};
    obs::StallWatchdog wd(10000);
    wd.addWorker("worker a", &clock, nullptr, true);
    wd.start();
    wd.dumpNow("unit test");
    wd.stop();
    EXPECT_EQ(wd.stallDumps(), 1u);
    EXPECT_NE(wd.lastDump().find("unit test"), std::string::npos);
    EXPECT_NE(wd.lastDump().find("worker a"), std::string::npos);
}
