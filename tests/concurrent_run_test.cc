/**
 * @file
 * Re-entrancy tests: two complete engines running concurrently in one
 * process must neither interfere (results bit-identical to solo runs)
 * nor share run-scoped state (fault plans, obs registries). This is
 * the multi-tenant foundation the job server builds on; CI runs it
 * under TSan.
 *
 * Scheme choice matters here: only cycle-by-cycle service is
 * bit-deterministic on the threaded host regardless of scheduling
 * (DESIGN.md §3) — slack schemes keep committed-uop counts stable
 * but their final cycle counts shift with host timing, so asserting
 * cycle equality on them is flaky by construction under load or
 * TSan. Bit-identity checks therefore run CC; a quantum test covers
 * the slack path with the counts that are actually invariant.
 */

#include <thread>

#include <gtest/gtest.h>

#include "core/run.hh"

using namespace slacksim;

namespace {

SimConfig
makeConfig(const std::string &kernel, std::uint32_t cores,
           std::uint64_t seed, bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = cores;
    config.workload.seed = seed;
    config.target.numCores = cores;
    // Lockstep sorted service: deterministic even on the threaded
    // host, so concurrent and solo runs are comparable bit-for-bit.
    config.engine.scheme = SchemeKind::CycleByCycle;
    config.engine.maxCommittedUops = 30000;
    config.engine.parallelHost = parallel_host;
    return config;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.globalCycles, b.globalCycles);
    EXPECT_EQ(a.violations.total(), b.violations.total());
}

} // namespace

TEST(ConcurrentRunTest, TwoParallelEnginesMatchSoloRuns)
{
    const SimConfig cfg_a = makeConfig("fft", 4, 42, true);
    const SimConfig cfg_b = makeConfig("radix", 4, 7, true);

    const RunResult solo_a = runSimulation(cfg_a);
    const RunResult solo_b = runSimulation(cfg_b);

    RunResult conc_a, conc_b;
    std::thread ta([&] { conc_a = runSimulation(cfg_a); });
    std::thread tb([&] { conc_b = runSimulation(cfg_b); });
    ta.join();
    tb.join();

    expectSameResult(conc_a, solo_a);
    expectSameResult(conc_b, solo_b);
}

TEST(ConcurrentRunTest, MixedHostEnginesCoexist)
{
    // One threaded engine and one serial engine sharing the process.
    const SimConfig cfg_a = makeConfig("pingpong", 4, 1, true);
    const SimConfig cfg_b = makeConfig("stream", 2, 2, false);

    const RunResult solo_a = runSimulation(cfg_a);
    const RunResult solo_b = runSimulation(cfg_b);

    RunResult conc_a, conc_b;
    std::thread ta([&] { conc_a = runSimulation(cfg_a); });
    std::thread tb([&] { conc_b = runSimulation(cfg_b); });
    ta.join();
    tb.join();

    expectSameResult(conc_a, solo_a);
    expectSameResult(conc_b, solo_b);
}

TEST(ConcurrentRunTest, QuantumRunsKeepStableCountsConcurrently)
{
    // The slack path under concurrency: quantum runs pace on host
    // timing, so final cycle counts legitimately wander a little —
    // but the committed-uop count is termination-defined and must
    // not move when another engine shares the process.
    SimConfig cfg = makeConfig("pingpong", 4, 1, true);
    cfg.engine.scheme = SchemeKind::Quantum;
    cfg.engine.quantum = 16;
    cfg.engine.maxCommittedUops = 120000;
    const SimConfig other = makeConfig("stream", 2, 2, false);

    const RunResult solo = runSimulation(cfg);

    RunResult conc_a, conc_b;
    std::thread ta([&] { conc_a = runSimulation(cfg); });
    std::thread tb([&] { conc_b = runSimulation(other); });
    ta.join();
    tb.join();

    EXPECT_EQ(conc_a.committedUops, solo.committedUops);
}

TEST(ConcurrentRunTest, FaultPlansAreRunLocal)
{
    // Run A injects a worker stall; run B must see no plan at all.
    SimConfig cfg_a = makeConfig("fft", 4, 42, true);
    cfg_a.engine.faultSpecs.push_back("worker-stall@cycle:500:2");
    const SimConfig cfg_b = makeConfig("lu", 4, 42, true);

    RunResult res_a, res_b;
    std::thread ta([&] { res_a = runSimulation(cfg_a); });
    std::thread tb([&] { res_b = runSimulation(cfg_b); });
    ta.join();
    tb.join();

    EXPECT_EQ(res_a.faultSpecCount, 1u);
    EXPECT_EQ(res_a.faultInjections.size(), 1u);
    EXPECT_EQ(res_b.faultSpecCount, 0u);
    EXPECT_TRUE(res_b.faultInjections.empty());

    // The stall perturbs host timing only; simulated results of the
    // faulted run still match a clean solo run.
    const RunResult solo_a =
        runSimulation(makeConfig("fft", 4, 42, true));
    expectSameResult(res_a, solo_a);
}

TEST(ConcurrentRunTest, ManySmallRunsBackToBackStayIndependent)
{
    // Re-entry stress: the same config run repeatedly (and two at a
    // time) keeps producing the same answer — no state leaks between
    // consecutive runs in one process.
    const SimConfig cfg = makeConfig("falseshare", 2, 9, true);
    const RunResult ref = runSimulation(cfg);
    for (int i = 0; i < 3; ++i) {
        RunResult r1, r2;
        std::thread t1([&] { r1 = runSimulation(cfg); });
        std::thread t2([&] { r2 = runSimulation(cfg); });
        t1.join();
        t2.join();
        expectSameResult(r1, ref);
        expectSameResult(r2, ref);
    }
}
