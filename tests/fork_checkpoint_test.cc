/**
 * @file
 * Tests for the fork()-based process checkpointing (paper Section
 * 5.1). Each scenario runs inside a forked child so the checkpoint
 * chain's exit-status propagation cannot take the test runner down;
 * results come back over a pipe.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/fork_checkpoint.hh"
#include "core/run.hh"

using namespace slacksim;

namespace {

/**
 * Run @p scenario in a forked child; the child writes a result line
 * to a pipe and exits. @return the line read back (empty on failure).
 */
std::string
runInChild(void (*scenario)(int write_fd))
{
    int fds[2];
    if (pipe(fds) != 0)
        return "pipe-failed";
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        close(fds[0]);
        scenario(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::string out;
    char buf[512];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    return out;
}

void
writeLine(int fd, const std::string &line)
{
    [[maybe_unused]] const ssize_t n =
        write(fd, line.c_str(), line.size());
}

void
basicRollbackScenario(int fd)
{
    ForkCheckpointer ck;
    int local_state = 1;
    const auto outcome = ck.checkpoint();
    if (outcome == ForkCheckpointer::Outcome::Continue &&
        ck.rollbackCount() == 0) {
        local_state = 2; // will be undone by the rollback
        ck.addWastedCycles(123);
        ck.rollback();
    }
    // Only the resumed checkpoint holder reaches this point.
    char buf[256];
    std::snprintf(buf, sizeof(buf), "outcome=%d state=%d rb=%llu w=%llu",
                  static_cast<int>(outcome), local_state,
                  static_cast<unsigned long long>(ck.rollbackCount()),
                  static_cast<unsigned long long>(ck.wastedCycles()));
    writeLine(fd, buf);
}

void
multiCheckpointScenario(int fd)
{
    ForkCheckpointer ck;
    // Take several checkpoints; roll back once from the third
    // interval; verify execution resumes at checkpoint 3, not 1.
    int phase = 0;
    for (int i = 0; i < 3; ++i) {
        ck.checkpoint();
        ++phase;
    }
    if (ck.rollbackCount() == 0) {
        phase += 100; // wiped by the rollback
        ck.rollback();
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), "phase=%d ckpts=%llu rb=%llu",
                  phase,
                  static_cast<unsigned long long>(ck.checkpointCount()),
                  static_cast<unsigned long long>(ck.rollbackCount()));
    writeLine(fd, buf);
}

void
engineForkScenario(int fd)
{
    // A full serial-engine speculative run with fork() checkpoints.
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 800;
    config.engine.parallelHost = false;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.initialBound = 64;
    config.engine.adaptive.targetViolationRate = 0.05;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    config.engine.checkpoint.interval = 1000;

    const std::uint64_t trace_uops =
        makeWorkload(config.workload).totalMicroOps();
    const RunResult r = runSimulation(config);
    char buf[256];
    std::snprintf(
        buf, sizeof(buf), "uops=%llu trace=%llu rb=%llu ck=%llu",
        static_cast<unsigned long long>(r.committedUops),
        static_cast<unsigned long long>(trace_uops),
        static_cast<unsigned long long>(r.host.rollbacks),
        static_cast<unsigned long long>(r.host.checkpointsTaken));
    writeLine(fd, buf);
}

void
engineForkMeasureScenario(int fd)
{
    // Measure mode with fork checkpoints: the original Table 2
    // overhead measurement (checkpoints, never roll back).
    SimConfig config;
    config.workload.kernel = "uniform";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 600;
    config.engine.parallelHost = false;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    config.engine.checkpoint.interval = 1000;

    const RunResult r = runSimulation(config);
    char buf[256];
    std::snprintf(buf, sizeof(buf), "rb=%llu ck=%llu done=%d",
                  static_cast<unsigned long long>(r.host.rollbacks),
                  static_cast<unsigned long long>(
                      r.host.checkpointsTaken),
                  r.committedUops > 0 ? 1 : 0);
    writeLine(fd, buf);
}

} // namespace

TEST(ForkCheckpoint, RollbackRestoresProcessMemory)
{
    const std::string out = runInChild(basicRollbackScenario);
    // outcome=1 (RolledBack), local_state back to 1, one rollback,
    // wasted cycles preserved across the rollback via shared memory.
    EXPECT_EQ(out, "outcome=1 state=1 rb=1 w=123");
}

TEST(ForkCheckpoint, RollbackReturnsToLatestCheckpoint)
{
    const std::string out = runInChild(multiCheckpointScenario);
    // phase counted 3 checkpoints before the rollback and the +100
    // was wiped; the 4th checkpoint count comes from... no new
    // checkpoint after resume, so ckpts=3.
    EXPECT_EQ(out, "phase=3 ckpts=3 rb=1");
}

TEST(ForkCheckpoint, SpeculativeEngineRunCompletes)
{
    const std::string out = runInChild(engineForkScenario);
    ASSERT_FALSE(out.empty());
    // Parse: uops==trace (completed), at least one rollback happened.
    unsigned long long uops = 0, trace = 0, rb = 0, ck = 0;
    ASSERT_EQ(std::sscanf(out.c_str(),
                          "uops=%llu trace=%llu rb=%llu ck=%llu", &uops,
                          &trace, &rb, &ck),
              4)
        << out;
    EXPECT_EQ(uops, trace);
    EXPECT_GT(rb, 0u);
    EXPECT_GT(ck, 1u);
}

TEST(ForkCheckpoint, MeasureModeNeverRollsBack)
{
    const std::string out = runInChild(engineForkMeasureScenario);
    ASSERT_FALSE(out.empty());
    unsigned long long rb = 99, ck = 0;
    int done = 0;
    ASSERT_EQ(std::sscanf(out.c_str(), "rb=%llu ck=%llu done=%d", &rb,
                          &ck, &done),
              3)
        << out;
    if (std::getenv("SLACKSIM_FAULT_SPEC")) {
        // Chaos matrix: Measure mode takes no *violation* rollbacks,
        // but an injected child death still forces one recovery
        // rollback per fault — the run completing is the invariant.
        EXPECT_LE(rb, 3u);
    } else {
        EXPECT_EQ(rb, 0u);
    }
    EXPECT_GT(ck, 1u);
    EXPECT_EQ(done, 1);
}

TEST(ForkCheckpoint, ParallelHostRejected)
{
    SimConfig config;
    config.workload.numThreads = config.target.numCores;
    config.engine.parallelHost = true;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    EXPECT_DEATH(config.validate(), "serial host engine");
}
