/**
 * @file
 * Cross-cutting engine properties: host-knob invariance of the gold
 * standard (burst size, queue capacity must not change simulated
 * results), checkpoint edge cases, seed sensitivity of Lax-P2P, and
 * combined stop conditions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/pacer.hh"
#include "core/run.hh"
#include "workload/kernels.hh"

using namespace slacksim;

namespace {

SimConfig
smallConfig(const std::string &kernel, SchemeKind scheme,
            bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 400;
    config.workload.fftPoints = 1024;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = scheme;
    config.engine.parallelHost = parallel_host;
    return config;
}

void
expectSameSimulation(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.violations.busViolations, b.violations.busViolations);
    EXPECT_EQ(a.violations.mapViolations, b.violations.mapViolations);
    EXPECT_EQ(a.coreTotal.l1dHits, b.coreTotal.l1dHits);
    EXPECT_EQ(a.coreTotal.l1dMisses, b.coreTotal.l1dMisses);
    EXPECT_EQ(a.uncore.busRequests, b.uncore.busRequests);
    EXPECT_EQ(a.uncore.l2Misses, b.uncore.l2Misses);
}

} // namespace

/** CC results must not depend on host-side batching knobs. */
class HostKnobInvariance
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>>
{
};

TEST_P(HostKnobInvariance, CycleByCycleIgnoresBurstSize)
{
    const auto [burst, parallel] = GetParam();
    auto reference =
        smallConfig("falseshare", SchemeKind::CycleByCycle, false);
    reference.engine.burstCycles = 64;
    auto variant =
        smallConfig("falseshare", SchemeKind::CycleByCycle, parallel);
    variant.engine.burstCycles = burst;
    expectSameSimulation(runSimulation(reference),
                         runSimulation(variant));
}

INSTANTIATE_TEST_SUITE_P(
    Bursts, HostKnobInvariance,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 7, 64, 1024),
                       ::testing::Bool()));

TEST(HostKnobs, CycleByCycleIgnoresQueueCapacity)
{
    auto small = smallConfig("uniform", SchemeKind::CycleByCycle, false);
    small.engine.queueCapacity = 64;
    auto large = small;
    large.engine.queueCapacity = 8192;
    expectSameSimulation(runSimulation(small), runSimulation(large));
}

TEST(HostKnobs, SerialCcMatchesParallelForSplashWindow)
{
    for (const auto &kernel : splashNames()) {
        auto serial = smallConfig(kernel, SchemeKind::CycleByCycle,
                                  false);
        serial.workload.bodies = 128;
        serial.workload.matrixN = 32;
        serial.workload.blockB = 8;
        serial.workload.molecules = 16;
        serial.workload.timesteps = 1;
        serial.engine.maxCommittedUops = 15000;
        auto parallel = serial;
        parallel.engine.parallelHost = true;
        SCOPED_TRACE(kernel);
        const auto a = runSimulation(serial);
        const auto b = runSimulation(parallel);
        // With a uop budget the stop points may differ by a burst, so
        // compare accuracy-relevant *rates* rather than totals.
        EXPECT_EQ(a.violations.total(), 0u);
        EXPECT_EQ(b.violations.total(), 0u);
        EXPECT_NEAR(a.cpi(), b.cpi(), a.cpi() * 0.05);
    }
}

TEST(LaxP2PSeeds, SameSeedSameSerialResult)
{
    auto config = smallConfig("uniform", SchemeKind::LaxP2P, false);
    config.engine.slackBound = 8;
    config.engine.p2pSeed = 777;
    expectSameSimulation(runSimulation(config), runSimulation(config));
}

TEST(LaxP2PSeeds, DifferentSeedsGiveDifferentPairings)
{
    // The serial engine's round-robin keeps cores so evenly paced
    // that the pairing choice rarely changes results there, so check
    // the pairing sequence itself at the pacer level.
    HostStats host_a, host_b;
    EngineConfig e;
    e.scheme = SchemeKind::LaxP2P;
    e.slackBound = 4;
    e.p2pSeed = 1;
    Pacer a(e, 8, &host_a);
    e.p2pSeed = 2;
    Pacer b(e, 8, &host_b);
    std::vector<Tick> locals = {10, 20, 30, 40, 50, 60, 70, 80};
    bool differs = false;
    for (CoreId c = 0; c < 8; ++c) {
        differs |= a.maxLocalForCore(c, 10, locals) !=
                   b.maxLocalForCore(c, 10, locals);
    }
    EXPECT_TRUE(differs);
}

TEST(CheckpointEdges, MinimumIntervalWorks)
{
    auto config = smallConfig("pingpong", SchemeKind::CycleByCycle,
                              false);
    config.workload.iters = 100;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.interval = 100; // the configured minimum
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.checkpointsTaken, 10u);
    EXPECT_EQ(r.host.rollbacks, 0u);
}

TEST(CheckpointEdges, BudgetStopsDuringCheckpointedRun)
{
    auto config = smallConfig("uniform", SchemeKind::Adaptive, false);
    config.workload.iters = 5000;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.interval = 1000;
    config.engine.maxCommittedUops = 15000;
    const auto r = runSimulation(config);
    EXPECT_GE(r.committedUops, 15000u);
    EXPECT_GT(r.host.checkpointsTaken, 0u);
}

TEST(CheckpointEdges, SpeculativeWithWarmup)
{
    auto config = smallConfig("falseshare", SchemeKind::Adaptive, false);
    config.workload.iters = 1500;
    config.engine.warmupUops = 5000;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 2000;
    config.engine.adaptive.initialBound = 32;
    config.engine.adaptive.targetViolationRate = 0.05;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    // Completes; post-warmup committed count is below the trace total.
    EXPECT_LT(r.committedUops, w.totalMicroOps());
    EXPECT_GT(r.committedUops, 0u);
}

TEST(SchemeMatrix, EverySchemeOnEveryHostSmokes)
{
    for (const SchemeKind scheme :
         {SchemeKind::CycleByCycle, SchemeKind::Quantum,
          SchemeKind::Bounded, SchemeKind::Unbounded,
          SchemeKind::Adaptive, SchemeKind::LaxP2P}) {
        for (const bool parallel : {false, true}) {
            auto config = smallConfig("uniform", scheme, parallel);
            config.workload.iters = 300;
            const Workload w = makeWorkload(config.workload);
            SCOPED_TRACE(std::string(schemeName(scheme)) +
                         (parallel ? "/par" : "/ser"));
            const auto r = runSimulation(config);
            EXPECT_EQ(r.committedUops, w.totalMicroOps());
        }
    }
}

TEST(Protocols, MsiGeneratesMoreUpgradeTraffic)
{
    // LU reads block rows before writing them back: with MESI a sole
    // reader gets Exclusive and stores silently; MSI pays an upgrade
    // transaction for every such line.
    auto mesi = smallConfig("lu", SchemeKind::CycleByCycle, false);
    mesi.workload.matrixN = 32;
    mesi.workload.blockB = 8;
    auto msi = mesi;
    msi.target.protocol = CoherenceProtocol::MSI;
    const auto r_mesi = runSimulation(mesi);
    const auto r_msi = runSimulation(msi);
    EXPECT_GT(r_msi.coreTotal.l1dUpgrades,
              2 * r_mesi.coreTotal.l1dUpgrades);
    EXPECT_GT(r_msi.uncore.busRequests, r_mesi.uncore.busRequests);
}

TEST(EngineScale, ThirtyTwoCoresSmoke)
{
    // The paper targets CMPs with 10s-100s of cores; make sure the
    // engine scales structurally (masks, barriers, pacing) well past
    // the 8-core evaluation point.
    SimConfig config;
    config.target.numCores = 32;
    config.workload.kernel = "uniform";
    config.workload.numThreads = 32;
    config.workload.iters = 120;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 16;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    EXPECT_EQ(r.perCore.size(), 32u);
}

TEST(RunResultReport, PerCoreTablePrints)
{
    auto config = smallConfig("pingpong", SchemeKind::CycleByCycle,
                              false);
    config.workload.iters = 50;
    const auto r = runSimulation(config);
    std::ostringstream os;
    r.printPerCore(os);
    EXPECT_NE(os.str().find("per-core breakdown"), std::string::npos);
    // Eight data rows, one per core.
    std::size_t rows = 0;
    for (CoreId c = 0; c < 8; ++c)
        rows += os.str().find("\n" + std::to_string(c) + " ") !=
                        std::string::npos
                    ? 1
                    : 0;
    EXPECT_GE(rows, 7u);
}

TEST(RunResultReport, JsonIsWellFormedAndComplete)
{
    auto config = smallConfig("uniform", SchemeKind::Adaptive, false);
    config.workload.iters = 200;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.interval = 1000;
    const auto r = runSimulation(config);
    std::ostringstream os;
    r.printJson(os);
    const std::string json = os.str();
    // Structural sanity without a JSON parser: balanced braces and
    // every top-level section present.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    for (const char *key :
         {"\"workload\"", "\"scheme\"", "\"execCycles\"",
          "\"violations\"", "\"uncore\"", "\"checkpointing\"",
          "\"adaptive\"", "\"intervals\"", "\"perCore\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(BankedManager, CcMatchesSingleBankExactly)
{
    // Sharding the manager's staging and the global cache map into
    // per-address banks must be invisible to the gold standard: the
    // per-bank tournament plus the top-level (ts, src, seq) selection
    // reproduces the exact single-bank service order.
    for (const std::string kernel : {"falseshare", "uniform"}) {
        auto flat = smallConfig(kernel, SchemeKind::CycleByCycle, true);
        for (const std::uint32_t banks : {1u, 2u, 4u, 16u}) {
            auto banked = flat;
            banked.engine.managerBanks = banks;
            SCOPED_TRACE(kernel + " banks=" + std::to_string(banks));
            expectSameSimulation(runSimulation(flat),
                                 runSimulation(banked));
        }
    }
}

TEST(BankedManager, SlackSchemesMatchAcrossBankCounts)
{
    // Slack schemes service in the same order regardless of how the
    // state is banked, so their (approximate) results must also be
    // identical across bank counts — including the violation tallies
    // the banked GlobalCacheMap detects.
    for (const SchemeKind scheme :
         {SchemeKind::Bounded, SchemeKind::Adaptive}) {
        auto one = smallConfig("falseshare", scheme, true);
        one.engine.slackBound = 16;
        // Inline host: slack-scheme service order is arrival order,
        // which only the single-threaded topology pins down — with
        // real workers it is timing-dependent by design.
        one.engine.hostThreads = 1;
        one.engine.managerBanks = 1;
        auto eight = one;
        eight.engine.managerBanks = 8;
        SCOPED_TRACE(schemeName(scheme));
        const auto a = runSimulation(one);
        const auto b = runSimulation(eight);
        expectSameSimulation(a, b);
        EXPECT_EQ(a.violations.busViolations,
                  b.violations.busViolations);
        EXPECT_EQ(a.violations.mapViolations,
                  b.violations.mapViolations);
    }
}

TEST(HostThreads, CcInvariantAcrossWorkerTopologies)
{
    // Worker multiplexing is a host-side scheduling choice: pinning
    // the engine to 1 (inline), 2, 3 or 5 (one worker per core) host
    // threads must not change cycle-by-cycle results.
    const auto reference =
        runSimulation(smallConfig("falseshare",
                                  SchemeKind::CycleByCycle, true));
    for (const std::uint32_t threads : {1u, 2u, 3u, 5u}) {
        auto pinned = smallConfig("falseshare",
                                  SchemeKind::CycleByCycle, true);
        pinned.engine.hostThreads = threads;
        SCOPED_TRACE(threads);
        expectSameSimulation(reference, runSimulation(pinned));
    }
}

TEST(HostThreads, SlackSchemesCompleteOnEveryTopology)
{
    for (const SchemeKind scheme :
         {SchemeKind::Bounded, SchemeKind::Adaptive}) {
        for (const std::uint32_t threads : {1u, 2u, 4u}) {
            auto config = smallConfig("uniform", scheme, true);
            config.engine.hostThreads = threads;
            config.engine.slackBound = 16;
            const Workload w = makeWorkload(config.workload);
            SCOPED_TRACE(std::string(schemeName(scheme)) + " ht=" +
                         std::to_string(threads));
            const auto r = runSimulation(config);
            EXPECT_EQ(r.committedUops, w.totalMicroOps());
        }
    }
}

TEST(HierarchicalManager, CcMatchesFlatManagerExactly)
{
    // The paper's scaling suggestion: relay threads consolidating
    // clusters of OutQs must be invisible to the gold standard.
    for (const std::string kernel : {"falseshare", "uniform"}) {
        auto flat = smallConfig(kernel, SchemeKind::CycleByCycle, true);
        auto tree = flat;
        tree.engine.managerClusters = 2;
        SCOPED_TRACE(kernel);
        expectSameSimulation(runSimulation(flat), runSimulation(tree));
    }
}

TEST(HierarchicalManager, SlackSchemesCompleteThroughRelays)
{
    for (const SchemeKind scheme :
         {SchemeKind::Bounded, SchemeKind::Unbounded,
          SchemeKind::Adaptive}) {
        auto config = smallConfig("uniform", scheme, true);
        config.engine.managerClusters = 4;
        config.engine.slackBound = 16;
        const Workload w = makeWorkload(config.workload);
        SCOPED_TRACE(schemeName(scheme));
        const auto r = runSimulation(config);
        EXPECT_EQ(r.committedUops, w.totalMicroOps());
    }
}

TEST(HierarchicalManager, SixteenCoresFourClusters)
{
    SimConfig config;
    config.target.numCores = 16;
    config.workload.kernel = "uniform";
    config.workload.numThreads = 16;
    config.workload.iters = 150;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 8;
    config.engine.managerClusters = 4;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
}

TEST(HierarchicalManager, InvalidCombinationsRejected)
{
    SimConfig config;
    config.workload.numThreads = config.target.numCores;
    config.engine.managerClusters = 2;
    config.engine.parallelHost = false;
    EXPECT_DEATH(config.validate(), "parallel host");

    config.engine.parallelHost = true;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    EXPECT_DEATH(config.validate(), "checkpointing");
}
