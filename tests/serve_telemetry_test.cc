/**
 * @file
 * Fleet-telemetry unit tests: histogram bucket math, the Prometheus
 * text exposition (golden families + cumulative-bucket invariants),
 * registry coherence, and the JSONL lifecycle event log (header,
 * global ordering, record-after-close).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/telemetry.hh"
#include "util/json_parse.hh"

using namespace slacksim;
using namespace slacksim::serve;

namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

bool
hasLine(const std::vector<std::string> &lines, const std::string &want)
{
    for (const std::string &line : lines) {
        if (line == want)
            return true;
    }
    return false;
}

} // namespace

TEST(DurationHistogramTest, BucketMathAndCumulativeCounts)
{
    DurationHistogram h({10.0, 100.0, 1000.0});

    // lower_bound semantics: a sample equal to a bound lands in that
    // bound's bucket (le is an upper bound, inclusive).
    h.observe(5.0);    // le=10
    h.observe(10.0);   // le=10
    h.observe(50.0);   // le=100
    h.observe(999.0);  // le=1000
    h.observe(5000.0); // +Inf
    h.observe(-3.0);   // clamped to 0 -> le=10

    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 50.0 + 999.0 + 5000.0);

    const std::vector<std::uint64_t> counts = h.snapshot();
    ASSERT_EQ(counts.size(), 4u); // 3 finite + the +Inf bucket
    EXPECT_EQ(counts[0], 3u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
}

TEST(DurationHistogramTest, PercentileReportsBucketUpperBound)
{
    DurationHistogram h({10.0, 100.0, 1000.0});
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0); // empty -> 0

    for (int i = 0; i < 90; ++i)
        h.observe(1.0); // le=10
    for (int i = 0; i < 10; ++i)
        h.observe(500.0); // le=1000

    EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(95), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 1000.0);

    // The +Inf bucket reports the last finite bound, never infinity.
    DurationHistogram tail({10.0});
    tail.observe(99999.0);
    EXPECT_DOUBLE_EQ(tail.percentile(99), 10.0);
}

TEST(DurationHistogramTest, ConcurrentObserversLoseNothing)
{
    DurationHistogram h(DurationHistogram::defaultBoundsMs());
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(1.0);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * 1.0);
}

TEST(ServerTelemetryTest, ExpositionGolden)
{
    ServerTelemetry t;
    t.jobsSubmitted.add(5);
    t.jobsDone.add(3);
    t.jobsCancelled.add(1);
    t.jobsTimedOut.add(1);
    t.admissionDenials.add(2);
    t.admissionBackfills.add();
    t.jobsQueued.set(0);
    t.jobsRunning.set(0);
    t.poolThreadsTotal.set(16);
    t.poolThreadsBusy.set(5);
    t.budgetMemTotalMb.set(16384);
    t.queueWaitMs.observe(3.0);   // le=5
    t.queueWaitMs.observe(40.0);  // le=50
    t.runDurationMs.observe(700.0);

    EXPECT_EQ(t.terminalTotal(), 5u);

    std::ostringstream os;
    t.writeExposition(os);
    const std::vector<std::string> lines = splitLines(os.str());

    EXPECT_TRUE(hasLine(lines,
                        "# TYPE slacksim_jobs_submitted_total "
                        "counter"));
    EXPECT_TRUE(hasLine(lines, "slacksim_jobs_submitted_total 5"));
    EXPECT_TRUE(hasLine(
        lines, "slacksim_jobs_terminal_total{status=\"done\"} 3"));
    EXPECT_TRUE(hasLine(
        lines, "slacksim_jobs_terminal_total{status=\"failed\"} 0"));
    EXPECT_TRUE(hasLine(
        lines,
        "slacksim_jobs_terminal_total{status=\"cancelled\"} 1"));
    EXPECT_TRUE(hasLine(
        lines, "slacksim_jobs_terminal_total{status=\"timeout\"} 1"));
    EXPECT_TRUE(hasLine(lines, "slacksim_admission_denials_total 2"));
    EXPECT_TRUE(
        hasLine(lines, "slacksim_admission_backfills_total 1"));
    EXPECT_TRUE(hasLine(lines, "# TYPE slacksim_jobs_queued gauge"));
    EXPECT_TRUE(hasLine(lines, "slacksim_pool_threads_total 16"));
    EXPECT_TRUE(hasLine(lines, "slacksim_pool_threads_busy 5"));
    EXPECT_TRUE(hasLine(lines, "slacksim_budget_mem_total_mb 16384"));

    // Histogram series: cumulative buckets, +Inf equals _count.
    EXPECT_TRUE(hasLine(
        lines, "# TYPE slacksim_queue_wait_ms histogram"));
    EXPECT_TRUE(
        hasLine(lines, "slacksim_queue_wait_ms_bucket{le=\"5\"} 1"));
    EXPECT_TRUE(
        hasLine(lines, "slacksim_queue_wait_ms_bucket{le=\"50\"} 2"));
    EXPECT_TRUE(hasLine(
        lines, "slacksim_queue_wait_ms_bucket{le=\"60000\"} 2"));
    EXPECT_TRUE(hasLine(
        lines, "slacksim_queue_wait_ms_bucket{le=\"+Inf\"} 2"));
    EXPECT_TRUE(hasLine(lines, "slacksim_queue_wait_ms_sum 43"));
    EXPECT_TRUE(hasLine(lines, "slacksim_queue_wait_ms_count 2"));
    EXPECT_TRUE(hasLine(lines, "slacksim_run_duration_ms_count 1"));

    // Exposition-format invariants: every non-comment line is
    // "name{labels} value" or "name value", and every metric family
    // is introduced by HELP + TYPE in that order.
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        ASSERT_FALSE(line.empty());
        if (line.rfind("# HELP ", 0) == 0) {
            ASSERT_LT(i + 1, lines.size());
            EXPECT_EQ(lines[i + 1].rfind("# TYPE ", 0), 0u)
                << "HELP not followed by TYPE: " << line;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0)
            continue;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string value = line.substr(space + 1);
        EXPECT_NE(value.find_first_of("0123456789"),
                  std::string::npos)
            << line;
    }
}

TEST(EventLogTest, OrderedJsonlWithHeaderAndTimestamps)
{
    const std::string path = "serve_telemetry_events.jsonl";
    std::remove(path.c_str());
    {
        EventLog log;
        log.open(path);
        log.record(1, "submitted", eventField("name", "j\"1\""));
        log.record(1, "admitted",
                   eventFieldDouble("queue_ms", 1.25));
        log.record(2, "submitted");
        log.record(1, "completed",
                   eventFieldDouble("run_ms", 42.0));
        EXPECT_EQ(log.recorded(), 4u);
        log.flush();
        log.close();
        // Closed log: further records are dropped, not appended.
        log.record(2, "completed");
        EXPECT_EQ(log.recorded(), 4u);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 5u); // header + 4 events

    const json::Value header = json::parse(lines[0]);
    EXPECT_EQ(header.at("schema").asString(),
              "slacksim.server_events.v1");
    EXPECT_GT(header.at("wall_ms").asUint(), 0u);

    std::uint64_t last_seq = 0, last_steady = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const json::Value ev = json::parse(lines[i]);
        EXPECT_EQ(ev.at("seq").asUint(), last_seq + 1);
        last_seq = ev.at("seq").asUint();
        EXPECT_GE(ev.at("steady_ns").asUint(), last_steady);
        last_steady = ev.at("steady_ns").asUint();
        EXPECT_GT(ev.at("wall_ms").asUint(), 0u);
        EXPECT_FALSE(ev.at("event").asString().empty());
    }
    // Field splicing survived escaping and typed helpers.
    EXPECT_EQ(json::parse(lines[1]).at("name").asString(), "j\"1\"");
    EXPECT_DOUBLE_EQ(
        json::parse(lines[2]).at("queue_ms").asNumber(), 1.25);
    EXPECT_EQ(json::parse(lines[3]).at("job").asUint(), 2u);
    std::remove(path.c_str());
}

TEST(EventLogTest, RecordWithoutOpenIsNoOp)
{
    EventLog log;
    log.record(1, "submitted");
    EXPECT_EQ(log.recorded(), 0u);
    log.flush();
    log.close();
}
