/**
 * @file
 * Golden regression test: the cycle-by-cycle gold standard is fully
 * deterministic (integer timing arithmetic, seeded generators, sorted
 * event service), so its results for fixed configurations are pinned
 * exactly. Any change to these numbers means the simulated machine's
 * behavior changed — which must be a deliberate, reviewed decision,
 * never an accident of refactoring.
 *
 * To regenerate after an intentional model change, run each config
 * below through the serial engine and update the table (the
 * generation snippet lives in the repo history / EXPERIMENTS notes).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/run.hh"

using namespace slacksim;

namespace {

struct Golden
{
    std::uint64_t execCycles;
    std::uint64_t committedUops;
    std::uint64_t l1dMisses;
    std::uint64_t l1iMisses;
    std::uint64_t busRequests;
    std::uint64_t l2Misses;
};

const std::map<std::string, Golden> goldenValues = {
    {"barnes", {36900ull, 59970ull, 3105ull, 2009ull, 5288ull, 2469ull}},
    {"fft", {40914ull, 81968ull, 1495ull, 2282ull, 3801ull, 3218ull}},
    {"lu", {16322ull, 7688ull, 444ull, 482ull, 1010ull, 610ull}},
    {"water", {5267ull, 4536ull, 263ull, 286ull, 652ull, 337ull}},
    {"pingpong", {60797ull, 33616ull, 2484ull, 128ull, 2615ull, 129ull}},
    {"falseshare", {6300ull, 16816ull, 2487ull, 128ull, 2717ull, 132ull}},
    {"uniform", {10320ull, 11345ull, 2161ull, 519ull, 2659ull, 2134ull}},
    {"ocean", {4706ull, 4384ull, 318ull, 278ull, 598ull, 527ull}},
    {"radix", {13548ull, 9440ull, 4132ull, 592ull, 4935ull, 924ull}},
    {"syncstorm",
     {57985ull, 26116ull, 4208ull, 128ull, 4636ull, 136ull}},
};

SimConfig
goldenConfig(const std::string &kernel)
{
    SimConfig c;
    c.workload.kernel = kernel;
    c.workload.numThreads = 8;
    c.workload.iters = 300;
    c.workload.bodies = 128;
    c.workload.timesteps = 1;
    c.workload.fftPoints = 1024;
    c.workload.matrixN = 32;
    c.workload.blockB = 8;
    c.workload.molecules = 16;
    c.workload.footprintBytes = 64 * 1024;
    c.engine.parallelHost = false;
    c.engine.scheme = SchemeKind::CycleByCycle;
    return c;
}

} // namespace

class GoldenRun : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GoldenRun, CycleByCycleResultsArePinned)
{
    const std::string kernel = GetParam();
    const Golden &expect = goldenValues.at(kernel);
    const RunResult r = runSimulation(goldenConfig(kernel));
    EXPECT_EQ(r.execCycles, expect.execCycles);
    EXPECT_EQ(r.committedUops, expect.committedUops);
    EXPECT_EQ(r.coreTotal.l1dMisses, expect.l1dMisses);
    EXPECT_EQ(r.coreTotal.l1iMisses, expect.l1iMisses);
    EXPECT_EQ(r.uncore.busRequests, expect.busRequests);
    EXPECT_EQ(r.uncore.l2Misses, expect.l2Misses);
    EXPECT_EQ(r.violations.total(), 0u); // CC never violates
}

TEST_P(GoldenRun, ParallelEngineReproducesGoldenValues)
{
    const std::string kernel = GetParam();
    const Golden &expect = goldenValues.at(kernel);
    SimConfig config = goldenConfig(kernel);
    config.engine.parallelHost = true;
    const RunResult r = runSimulation(config);
    EXPECT_EQ(r.execCycles, expect.execCycles);
    EXPECT_EQ(r.committedUops, expect.committedUops);
    EXPECT_EQ(r.uncore.busRequests, expect.busRequests);
}

TEST_P(GoldenRun, BankedManagerReproducesGoldenValues)
{
    // The sharded manager must be bit-identical to the classic single-
    // bank layout: same pinned goldens for every bank count, on both
    // engines. 1 pins the degenerate banked layout, 3 exercises
    // addresses wrapping unevenly, 8 the widest practical split.
    const std::string kernel = GetParam();
    const Golden &expect = goldenValues.at(kernel);
    for (const std::uint32_t banks : {1u, 3u, 8u}) {
        for (const bool parallel : {false, true}) {
            SCOPED_TRACE(testing::Message()
                         << "banks=" << banks
                         << " parallel=" << parallel);
            SimConfig config = goldenConfig(kernel);
            config.engine.parallelHost = parallel;
            config.engine.managerBanks = banks;
            const RunResult r = runSimulation(config);
            EXPECT_EQ(r.execCycles, expect.execCycles);
            EXPECT_EQ(r.committedUops, expect.committedUops);
            EXPECT_EQ(r.uncore.busRequests, expect.busRequests);
            EXPECT_EQ(r.uncore.l2Misses, expect.l2Misses);
            EXPECT_EQ(r.violations.total(), 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GoldenRun,
    ::testing::Values("barnes", "fft", "lu", "water", "pingpong",
                      "falseshare", "uniform", "ocean", "radix",
                      "syncstorm"),
    [](const auto &info) { return info.param; });
