/**
 * @file
 * Tests for the deterministic fault-injection harness (DESIGN.md §9):
 * spec-grammar enforcement, each fault kind firing repeatably from
 * the same seed and being attributed to the layer that contained it,
 * checkpoint-integrity fallback/demotion behavior, and the
 * zero-cost-when-disabled property.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/run.hh"
#include "fault/fault_plan.hh"
#include "workload/kernels.hh"

using namespace slacksim;
using fault::FaultKind;
using fault::FaultPlan;
using fault::InjectionRecord;

namespace {

/** Serial speculative baseline that rolls back on its own (see
 *  checkpoint_test's measureConfig): checkpoints every 1000 cycles,
 *  far too much initial slack. */
SimConfig
specConfig()
{
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 2000;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.parallelHost = false;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 0.05;
    config.engine.adaptive.initialBound = 64;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;
    return config;
}

/** @return the record of @p kind, or nullptr. */
const InjectionRecord *
findRecord(const RunResult &r, FaultKind kind)
{
    for (const auto &rec : r.faultInjections) {
        if (rec.kind == kind)
            return &rec;
    }
    return nullptr;
}

void
expectCompleted(const SimConfig &config, const RunResult &r)
{
    const Workload w = makeWorkload(config.workload);
    EXPECT_EQ(r.committedUops, w.totalMicroOps())
        << "faulted run did not complete the trace";
}

} // namespace

TEST(FaultSpecGrammar, ParsesEveryKind)
{
    const auto one = FaultPlan::parseSpec("snapshot-corrupt@ckpt:2");
    EXPECT_EQ(one.kind, FaultKind::SnapshotCorrupt);
    EXPECT_EQ(one.trigger, 2u);

    const auto stall =
        FaultPlan::parseSpec("worker-stall@cycle:5000:50:3");
    EXPECT_EQ(stall.kind, FaultKind::WorkerStall);
    EXPECT_EQ(stall.trigger, 5000u);
    EXPECT_EQ(stall.arg0, 50u);
    EXPECT_EQ(stall.arg1, 3u);

    const auto list = FaultPlan::parseSpecList(
        "child-kill@ckpt:1,io-fail@write:2;backpressure@cycle:10:100");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].kind, FaultKind::ChildKill);
    EXPECT_EQ(list[1].kind, FaultKind::IoFail);
    EXPECT_EQ(list[2].kind, FaultKind::Backpressure);
    EXPECT_EQ(list[2].arg0, 100u);
}

TEST(FaultSpecGrammarDeath, RejectsMalformedSpecs)
{
    EXPECT_DEATH(FaultPlan::parseSpec("meteor-strike@ckpt:1"),
                 "unknown fault kind");
    EXPECT_DEATH(FaultPlan::parseSpec("snapshot-corrupt"),
                 "not <kind>@<site>");
    EXPECT_DEATH(FaultPlan::parseSpec("snapshot-corrupt@cycle:1"),
                 "trigger site");
    EXPECT_DEATH(FaultPlan::parseSpec("snapshot-corrupt@ckpt:"),
                 "empty trigger");
    EXPECT_DEATH(FaultPlan::parseSpec("snapshot-corrupt@ckpt:-2"),
                 "bad trigger");
    EXPECT_DEATH(FaultPlan::parseSpec("snapshot-corrupt@ckpt:5x"),
                 "bad trigger");
    EXPECT_DEATH(FaultPlan::parseSpec("worker-stall@cycle:100"),
                 "needs cycle:N:MS");
    EXPECT_DEATH(FaultPlan::parseSpec("backpressure@cycle:10:0"),
                 "COUNT must be in");
    EXPECT_DEATH(FaultPlan::parseSpec("backpressure@cycle:10:99999999"),
                 "COUNT must be in");
    EXPECT_DEATH(FaultPlan::parseSpec("io-fail@write:1:extra"),
                 "trailing args");
}

TEST(FaultLayer, ZeroCostWhenDisabled)
{
    // No plan installed: every hook is one relaxed load of nullptr.
    EXPECT_EQ(FaultPlan::active(), nullptr);
    const auto r = runSimulation(specConfig());
    EXPECT_EQ(r.faultSpecCount, 0u);
    EXPECT_TRUE(r.faultInjections.empty());
    EXPECT_EQ(FaultPlan::active(), nullptr);
}

TEST(FaultInjection, SnapshotCorruptionRestoresFromLastGood)
{
    // Corrupt checkpoint 2's sealed arena, then force a rollback in
    // its interval: the restore must detect the damage and fall back
    // to the last good generation (checkpoint 1).
    SimConfig config = specConfig();
    config.engine.faultSpecs = {
        "snapshot-corrupt@ckpt:2,spurious-rollback@ckpt:2"};
    config.engine.faultSeed = 3;

    const RunResult r = runSimulation(config);
    expectCompleted(config, r);
    EXPECT_GT(r.host.rollbacks, 0u);

    const auto *corrupt = findRecord(r, FaultKind::SnapshotCorrupt);
    ASSERT_NE(corrupt, nullptr);
    EXPECT_EQ(corrupt->handledBy, "restore-fallback");
    EXPECT_NE(corrupt->detail.find("bit-flip"), std::string::npos);
    const auto *forced = findRecord(r, FaultKind::SpuriousRollback);
    ASSERT_NE(forced, nullptr);
    EXPECT_EQ(forced->handledBy, "manager-rollback");

    // The run carries on speculating: integrity fallback is not a
    // demotion as long as one good generation remained.
    EXPECT_EQ(r.degradationLevel, "speculative");
    EXPECT_EQ(r.demotions, 0u);

    // The acceptance bar: a faulted run either matches the fault-free
    // run's final stats or carries a clean demotion record. Here the
    // fallback restore rewinds further than the fault-free run does,
    // so completion must be exact even though cycle counts may differ.
    const SimConfig clean_config = [] {
        SimConfig c = specConfig();
        return c;
    }();
    const RunResult clean = runSimulation(clean_config);
    EXPECT_EQ(r.committedUops, clean.committedUops);
}

TEST(FaultInjection, SnapshotTruncationDetectedByLengthTrailer)
{
    SimConfig config = specConfig();
    config.engine.faultSpecs = {
        "snapshot-truncate@ckpt:2,spurious-rollback@ckpt:2"};
    const RunResult r = runSimulation(config);
    expectCompleted(config, r);

    const auto *trunc = findRecord(r, FaultKind::SnapshotTruncate);
    ASSERT_NE(trunc, nullptr);
    EXPECT_EQ(trunc->handledBy, "restore-fallback");
}

TEST(FaultInjection, CorruptOnlyGenerationDemotesInsteadOfCrashing)
{
    // Checkpoint 1 is the only generation when the forced rollback
    // lands: with nothing valid to restore, the run must demote out
    // of speculation and still finish.
    SimConfig config = specConfig();
    config.engine.faultSpecs = {
        "snapshot-corrupt@ckpt:1,spurious-rollback@ckpt:1"};
    const RunResult r = runSimulation(config);
    expectCompleted(config, r);

    const auto *corrupt = findRecord(r, FaultKind::SnapshotCorrupt);
    ASSERT_NE(corrupt, nullptr);
    EXPECT_EQ(corrupt->handledBy, "demoted");
    EXPECT_EQ(r.degradationLevel, "adaptive");
    EXPECT_EQ(r.demotions, 1u);
    ASSERT_FALSE(r.forensics.decisions.transitions().empty());
    const auto &t = r.forensics.decisions.transitions().front();
    EXPECT_STREQ(t.from, "speculative");
    EXPECT_STREQ(t.to, "adaptive");
    EXPECT_STREQ(t.reason, "checkpoint-integrity");
}

TEST(FaultInjection, SameSeedSameFaultsSameRun)
{
    SimConfig config = specConfig();
    config.engine.faultSpecs = {
        "snapshot-corrupt@ckpt:2,spurious-rollback@ckpt:2"};
    config.engine.faultSeed = 11;
    const RunResult a = runSimulation(config);
    const RunResult b = runSimulation(config);

    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.host.rollbacks, b.host.rollbacks);
    EXPECT_EQ(a.host.wastedCycles, b.host.wastedCycles);
    ASSERT_EQ(a.faultInjections.size(), b.faultInjections.size());
    for (std::size_t i = 0; i < a.faultInjections.size(); ++i) {
        EXPECT_EQ(a.faultInjections[i].cycle,
                  b.faultInjections[i].cycle);
        EXPECT_EQ(a.faultInjections[i].detail,
                  b.faultInjections[i].detail);
    }
}

TEST(FaultInjection, SpuriousRollbackAloneKeepsResultsExact)
{
    // A forced rollback with no underlying corruption replays into
    // the exact same simulated state: completion and commit counts
    // match the fault-free run.
    SimConfig config = specConfig();
    config.engine.faultSpecs = {"spurious-rollback@ckpt:3"};
    const RunResult faulted = runSimulation(config);
    expectCompleted(config, faulted);
    const auto *forced =
        findRecord(faulted, FaultKind::SpuriousRollback);
    ASSERT_NE(forced, nullptr);
    EXPECT_EQ(forced->handledBy, "manager-rollback");
    EXPECT_GT(faulted.host.rollbacks, 0u);

    SimConfig clean = specConfig();
    const RunResult r_clean = runSimulation(clean);
    EXPECT_EQ(faulted.committedUops, r_clean.committedUops);
    EXPECT_EQ(faulted.execCycles, r_clean.execCycles);
}

TEST(FaultInjection, WorkerStallIsInvisibleToSimulatedTime)
{
    // Stall core 1 for 30 host-ms in the parallel cycle-by-cycle
    // engine: wall time suffers, simulated results cannot.
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 300;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = SchemeKind::CycleByCycle;
    config.engine.parallelHost = true;

    SimConfig faulted_config = config;
    faulted_config.engine.faultSpecs = {
        "worker-stall@cycle:500:30:1"};
    const RunResult faulted = runSimulation(faulted_config);
    const RunResult clean = runSimulation(config);

    const auto *stall = findRecord(faulted, FaultKind::WorkerStall);
    ASSERT_NE(stall, nullptr);
    EXPECT_NE(stall->detail.find("core 1"), std::string::npos);
    EXPECT_FALSE(stall->handledBy.empty());

    EXPECT_EQ(faulted.execCycles, clean.execCycles);
    EXPECT_EQ(faulted.committedUops, clean.committedUops);
    EXPECT_EQ(faulted.violations.total(), clean.violations.total());
}

TEST(FaultInjection, BackpressureBurstDrainsAndCompletes)
{
    SimConfig config = specConfig();
    config.engine.faultSpecs = {"backpressure@cycle:2000:500"};
    const RunResult r = runSimulation(config);
    expectCompleted(config, r);
    const auto *bp = findRecord(r, FaultKind::Backpressure);
    ASSERT_NE(bp, nullptr);
    EXPECT_EQ(bp->handledBy, "manager-resumed");
}

TEST(FaultInjection, BackpressureBurstOnParallelHost)
{
    SimConfig config;
    config.workload.kernel = "uniform";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 2000;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 32;
    config.engine.parallelHost = true;
    config.engine.faultSpecs = {"backpressure@cycle:1000:500"};

    const RunResult r = runSimulation(config);
    expectCompleted(config, r);
    const auto *bp = findRecord(r, FaultKind::Backpressure);
    ASSERT_NE(bp, nullptr);
    EXPECT_EQ(bp->handledBy, "manager-resumed");
}

TEST(FaultInjection, IoFailureIsWarnedAndCounted)
{
    SimConfig config = specConfig();
    config.engine.obs.metricsOut =
        ::testing::TempDir() + "/fault_io_metrics.csv";
    config.engine.faultSpecs = {"io-fail@write:1"};
    const RunResult r = runSimulation(config);
    expectCompleted(config, r);

    const auto *io = findRecord(r, FaultKind::IoFail);
    ASSERT_NE(io, nullptr);
    EXPECT_EQ(io->handledBy, "io-warn");
    EXPECT_GE(r.forensics.obs.ioErrors, 1u);
}

namespace {

/** fork()-isolated scenario runner (see fork_checkpoint_test). */
std::string
runInChild(void (*scenario)(int write_fd))
{
    int fds[2];
    if (pipe(fds) != 0)
        return "pipe-failed";
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        close(fds[0]);
        scenario(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::string out;
    char buf[512];
    ssize_t n;
    while ((n = read(fds[0], buf, sizeof(buf))) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    close(fds[0]);
    int status = 0;
    waitpid(pid, &status, 0);
    return out;
}

SimConfig
forkSpecConfig()
{
    SimConfig config = specConfig();
    config.workload.iters = 800;
    config.engine.checkpoint.tech = CheckpointTech::ForkProcess;
    config.engine.checkpoint.childTimeoutMs = 10000;
    return config;
}

void
reportForkRun(int fd, const SimConfig &config)
{
    const std::uint64_t trace_uops =
        makeWorkload(config.workload).totalMicroOps();
    const RunResult r = runSimulation(config);
    int handled = 0;
    for (const auto &rec : r.faultInjections) {
        if ((rec.kind == FaultKind::ChildKill ||
             rec.kind == FaultKind::ChildExit) &&
            rec.handledBy == "parent-recovery") {
            handled = 1;
        }
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "uops=%llu trace=%llu handled=%d",
                  static_cast<unsigned long long>(r.committedUops),
                  static_cast<unsigned long long>(trace_uops), handled);
    [[maybe_unused]] const ssize_t w =
        write(fd, buf, std::strlen(buf));
}

void
childKillScenario(int fd)
{
    SimConfig config = forkSpecConfig();
    config.engine.faultSpecs = {"child-kill@ckpt:2"};
    reportForkRun(fd, config);
}

void
childExitScenario(int fd)
{
    SimConfig config = forkSpecConfig();
    config.engine.faultSpecs = {"child-exit@ckpt:2"};
    reportForkRun(fd, config);
}

void
expectForkRecovered(const std::string &out)
{
    ASSERT_FALSE(out.empty());
    unsigned long long uops = 0, trace = 1;
    int handled = 0;
    ASSERT_EQ(std::sscanf(out.c_str(),
                          "uops=%llu trace=%llu handled=%d", &uops,
                          &trace, &handled),
              3)
        << out;
    EXPECT_EQ(uops, trace) << "faulted fork run did not complete";
    EXPECT_EQ(handled, 1) << "child death not attributed";
}

} // namespace

TEST(FaultInjectionFork, KilledChildIsRecoveredByParent)
{
    expectForkRecovered(runInChild(childKillScenario));
}

TEST(FaultInjectionFork, NonzeroChildExitIsRecoveredByParent)
{
    expectForkRecovered(runInChild(childExitScenario));
}
