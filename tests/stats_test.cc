/**
 * @file
 * Tests for the statistics records, name tables and config parsing.
 */

#include <gtest/gtest.h>

#include "cache/mesi.hh"
#include "core/config.hh"
#include "stats/stats.hh"
#include "uncore/msg.hh"

using namespace slacksim;

TEST(CoreStatsRecord, AddAccumulatesEveryField)
{
    CoreStats a, b;
    a.committedInstrs = 1;
    a.committedLoads = 2;
    a.committedStores = 3;
    a.committedSyncOps = 4;
    a.fetchStallCycles = 5;
    a.robFullCycles = 6;
    a.sbFullCycles = 7;
    a.syncStallCycles = 8;
    a.idleCycles = 9;
    a.l1dHits = 10;
    a.l1dMisses = 11;
    a.l1dMshrMerges = 12;
    a.l1dMshrFullEvents = 13;
    a.l1dWritebacks = 14;
    a.l1dUpgrades = 15;
    a.l1iHits = 16;
    a.l1iMisses = 17;
    a.snoopInvalidations = 18;
    a.snoopDowngrades = 19;
    b = a;
    b.add(a);
    EXPECT_EQ(b.committedInstrs, 2u);
    EXPECT_EQ(b.idleCycles, 18u);
    EXPECT_EQ(b.snoopDowngrades, 38u);
    EXPECT_EQ(b.l1iMisses, 34u);
}

TEST(UncoreStatsRecord, AddAccumulates)
{
    UncoreStats a;
    a.busRequests = 100;
    a.l2Hits = 5;
    a.l2Misses = 7;
    a.lockAcquires = 3;
    a.barrierEpisodes = 2;
    UncoreStats b = a;
    b.add(a);
    EXPECT_EQ(b.busRequests, 200u);
    EXPECT_EQ(b.l2Hits, 10u);
    EXPECT_EQ(b.barrierEpisodes, 4u);
}

TEST(ViolationStatsRecord, TotalAndAdd)
{
    ViolationStats v;
    v.busViolations = 3;
    v.mapViolations = 4;
    EXPECT_EQ(v.total(), 7u);
    ViolationStats w;
    w.add(v);
    w.add(v);
    EXPECT_EQ(w.total(), 14u);
}

TEST(Names, MsgTypesAllPrintable)
{
    for (const MsgType t :
         {MsgType::GetS, MsgType::GetM, MsgType::Upgrade, MsgType::PutM,
          MsgType::LockAcq, MsgType::LockRel, MsgType::BarArrive,
          MsgType::Fill, MsgType::UpgradeAck, MsgType::SnoopInv,
          MsgType::SnoopDown, MsgType::SyncGrant}) {
        EXPECT_STRNE(msgTypeName(t), "unknown");
    }
}

TEST(Names, MsgClassPredicates)
{
    EXPECT_TRUE(isBusRequest(MsgType::GetS));
    EXPECT_TRUE(isBusRequest(MsgType::PutM));
    EXPECT_FALSE(isBusRequest(MsgType::LockAcq));
    EXPECT_FALSE(isBusRequest(MsgType::Fill));
    EXPECT_TRUE(isSyncRequest(MsgType::BarArrive));
    EXPECT_FALSE(isSyncRequest(MsgType::GetM));
    EXPECT_FALSE(isSyncRequest(MsgType::SyncGrant));
}

TEST(Names, MesiHelpers)
{
    EXPECT_STREQ(mesiName(MesiState::Invalid), "I");
    EXPECT_STREQ(mesiName(MesiState::Modified), "M");
    EXPECT_TRUE(canRead(MesiState::Shared));
    EXPECT_FALSE(canRead(MesiState::Invalid));
    EXPECT_TRUE(canWrite(MesiState::Exclusive));
    EXPECT_TRUE(canWrite(MesiState::Modified));
    EXPECT_FALSE(canWrite(MesiState::Shared));
    EXPECT_STREQ(protocolName(CoherenceProtocol::MSI), "MSI");
    EXPECT_STREQ(protocolName(CoherenceProtocol::MESI), "MESI");
}

TEST(Names, SchemeRoundTrip)
{
    for (const SchemeKind kind :
         {SchemeKind::CycleByCycle, SchemeKind::Quantum,
          SchemeKind::Bounded, SchemeKind::Unbounded,
          SchemeKind::Adaptive, SchemeKind::LaxP2P}) {
        EXPECT_EQ(parseScheme(schemeName(kind)), kind);
    }
    EXPECT_EQ(parseScheme("cycle-by-cycle"), SchemeKind::CycleByCycle);
    EXPECT_EQ(parseScheme("slack"), SchemeKind::Bounded);
    EXPECT_EQ(parseScheme("p2p"), SchemeKind::LaxP2P);
}

TEST(Names, UnknownSchemeIsFatal)
{
    EXPECT_DEATH(parseScheme("warp-speed"), "unknown scheme");
}

TEST(ConfigValidation, DefaultsAreValid)
{
    SimConfig config;
    config.workload.numThreads = config.target.numCores;
    config.validate(); // must not die
    SUCCEED();
}

TEST(ConfigValidation, RejectsBadGeometry)
{
    SimConfig config;
    config.workload.numThreads = config.target.numCores;
    config.target.l1d.lineBytes = 32; // mismatched with L2
    EXPECT_DEATH(config.validate(), "line sizes");

    SimConfig quantum;
    quantum.workload.numThreads = quantum.target.numCores;
    quantum.engine.scheme = SchemeKind::Quantum;
    quantum.engine.quantum = 0;
    EXPECT_DEATH(quantum.validate(), "quantum");

    SimConfig burst;
    burst.workload.numThreads = burst.target.numCores;
    burst.engine.burstCycles = 0;
    EXPECT_DEATH(burst.validate(), "burstCycles");
}

TEST(ConfigValidation, RejectsBadAdaptive)
{
    SimConfig config;
    config.workload.numThreads = config.target.numCores;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 0.0;
    EXPECT_DEATH(config.validate(), "target rate");

    config.engine.adaptive.targetViolationRate = 1e-4;
    config.engine.adaptive.minBound = 100;
    config.engine.adaptive.maxBound = 10;
    EXPECT_DEATH(config.validate(), "bound range");
}
