/**
 * @file
 * Tests for the out-of-order core timing model, driven through a
 * CoreComplex with a scripted mini-manager that answers bus requests
 * after a fixed latency.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cache/mesi.hh"
#include "core/core_complex.hh"
#include "workload/trace.hh"

using namespace slacksim;

namespace {

/** Scripted manager: answers every request after `latency` cycles. */
struct MiniManager
{
    explicit MiniManager(CoreComplex &cc, Tick latency = 5)
        : cc_(cc), latency_(latency)
    {
    }

    /** Advance one core cycle and play manager. */
    void
    step()
    {
        // Deliver matured responses first.
        while (!inFlight_.empty() &&
               inFlight_.front().ts <= cc_.localTime() + 1) {
            // Push as soon as possible; the core applies them when
            // its local time reaches the timestamp.
            if (!cc_.inQ().push(inFlight_.front()))
                break;
            inFlight_.pop_front();
        }
        ASSERT_EQ(cc_.cycle(cc_.localTime()),
                  CoreComplex::CycleOutcome::Progress);
        BusMsg msg;
        while (cc_.outQ().pop(msg))
            handle(msg);
    }

    void
    handle(const BusMsg &msg)
    {
        lastRequests.push_back(msg);
        BusMsg resp;
        resp.addr = msg.addr;
        resp.cache = msg.cache;
        resp.src = msg.src;
        resp.sync = msg.sync;
        resp.ts = msg.ts + latency_;
        switch (msg.type) {
          case MsgType::GetS:
            resp.type = MsgType::Fill;
            resp.grantState =
                static_cast<std::uint8_t>(MesiState::Exclusive);
            inFlight_.push_back(resp);
            break;
          case MsgType::GetM:
            resp.type = MsgType::Fill;
            resp.grantState =
                static_cast<std::uint8_t>(MesiState::Modified);
            inFlight_.push_back(resp);
            break;
          case MsgType::Upgrade:
            resp.type = MsgType::UpgradeAck;
            inFlight_.push_back(resp);
            break;
          case MsgType::PutM:
            break; // no response
          case MsgType::LockAcq:
          case MsgType::BarArrive:
            if (!suppressSync) {
                resp.type = MsgType::SyncGrant;
                inFlight_.push_back(resp);
            } else {
                heldSync.push_back(resp);
            }
            break;
          case MsgType::LockRel:
            ++lockReleases;
            break;
          default:
            FAIL() << "unexpected request " << msgTypeName(msg.type);
        }
    }

    /** Release sync grants held back by suppressSync. */
    void
    releaseSync(Tick ts)
    {
        for (BusMsg msg : heldSync) {
            msg.type = MsgType::SyncGrant;
            msg.ts = ts;
            inFlight_.push_back(msg);
        }
        heldSync.clear();
    }

    CoreComplex &cc_;
    Tick latency_;
    std::deque<BusMsg> inFlight_;
    std::vector<BusMsg> lastRequests;
    std::vector<BusMsg> heldSync;
    bool suppressSync = false;
    int lockReleases = 0;
};

SimConfig
oneCoreConfig()
{
    SimConfig config;
    config.target.numCores = 1;
    config.workload.numThreads = 1;
    return config;
}

/** Run until the core finishes or `limit` cycles elapse. */
Tick
runToCompletion(CoreComplex &cc, MiniManager &mgr, Tick limit = 100000)
{
    while (!cc.finished() && cc.localTime() < limit)
        mgr.step();
    EXPECT_TRUE(cc.finished()) << "core did not finish in " << limit;
    return cc.localTime();
}

} // namespace

TEST(OooCore, ComputeOnlyThroughputNearIssueWidth)
{
    TraceProgram prog;
    prog.codeFootprint = 256; // tiny loop body: 4 code lines
    TraceBuilder b(prog);
    b.compute(4000);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    const Tick cycles = runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedInstrs, 4000u);
    // 4-wide core: at least 1000 cycles, and little overhead beyond
    // the initial I-misses and pipeline fill.
    EXPECT_GE(cycles, 1000u);
    EXPECT_LE(cycles, 1100u);
}

TEST(OooCore, LoadMissLatencyStallsDependentWork)
{
    // A chain of load -> dependent compute across many lines.
    TraceProgram prog;
    TraceBuilder b(prog);
    for (int i = 0; i < 50; ++i)
        b.load(0x100000 + static_cast<Addr>(i) * 64, 1);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc, 50); // long memory latency
    const Tick cycles = runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedLoads, 50u);
    EXPECT_EQ(cc.stats().l1dMisses, 50u);
    // The 8 MSHRs allow overlap, so far fewer than 50*50 cycles, but
    // the latency is not fully hidden either (ROB is 64).
    EXPECT_GT(cycles, 300u);
    EXPECT_LT(cycles, 3000u);
}

TEST(OooCore, LoadsHitAfterWarmup)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    for (int pass = 0; pass < 2; ++pass)
        for (int i = 0; i < 16; ++i)
            b.load(0x100000 + static_cast<Addr>(i) * 64, 0);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().l1dMisses, 16u);
    EXPECT_EQ(cc.stats().l1dHits, 16u);
}

TEST(OooCore, StoresDrainThroughStoreBuffer)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    for (int i = 0; i < 20; ++i)
        b.store(0x200000 + static_cast<Addr>(i % 4) * 8);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedStores, 20u);
    // All stores to one line: one GetM, then hits.
    EXPECT_EQ(cc.stats().l1dMisses, 1u);
    EXPECT_EQ(cc.core().storeBufferOccupancy(), 0u);
}

TEST(OooCore, LockWaitsForGrant)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.lock(3);
    b.compute(10);
    b.unlock(3);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    mgr.suppressSync = true;

    for (int i = 0; i < 200; ++i)
        mgr.step();
    EXPECT_FALSE(cc.finished());
    EXPECT_EQ(cc.stats().committedSyncOps, 0u);
    ASSERT_FALSE(mgr.heldSync.empty());
    EXPECT_EQ(mgr.heldSync[0].sync, 3u);

    mgr.releaseSync(cc.localTime() + 2);
    runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedSyncOps, 2u); // lock + unlock
    EXPECT_EQ(mgr.lockReleases, 1);
    EXPECT_GT(cc.stats().syncStallCycles, 100u);
}

TEST(OooCore, BarrierBlocksUntilRelease)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.compute(5);
    b.barrier(0);
    b.compute(5);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    mgr.suppressSync = true;
    for (int i = 0; i < 100; ++i)
        mgr.step();
    EXPECT_FALSE(cc.finished());
    mgr.releaseSync(cc.localTime() + 2);
    runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedInstrs, 11u);
}

TEST(OooCore, SyncActsAsStoreFence)
{
    // The lock request must not be sent while stores are buffered.
    TraceProgram prog;
    TraceBuilder b(prog);
    b.store(0x300000);
    b.lock(0);
    b.unlock(0);
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc, 30);
    runToCompletion(cc, mgr);
    // Order of requests: I-fetch GetS, then GetM (store), then LockAcq.
    std::vector<MsgType> types;
    for (const auto &m : mgr.lastRequests)
        if (m.type == MsgType::GetM || m.type == MsgType::LockAcq ||
            m.type == MsgType::LockRel)
            types.push_back(m.type);
    ASSERT_EQ(types.size(), 3u);
    EXPECT_EQ(types[0], MsgType::GetM);
    EXPECT_EQ(types[1], MsgType::LockAcq);
    EXPECT_EQ(types[2], MsgType::LockRel);
}

TEST(OooCore, InstructionFetchMissesOnLargeFootprint)
{
    TraceProgram prog;
    prog.codeFootprint = 64 * 1024; // 4x the 16KB L1I
    TraceBuilder b(prog);
    b.compute(64 * 1024 / 4); // walk the whole footprint once
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    runToCompletion(cc, mgr, 1000000);
    // Every code line misses once: footprint / 64.
    EXPECT_EQ(cc.stats().l1iMisses, 64u * 1024 / 64);
    EXPECT_GT(cc.stats().fetchStallCycles, 0u);
}

TEST(OooCore, SnapshotRoundTripReproducesExecution)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    for (int i = 0; i < 200; ++i) {
        b.load(0x100000 + static_cast<Addr>(i % 32) * 64, 2);
        if (i % 7 == 0)
            b.store(0x200000 + static_cast<Addr>(i % 8) * 64);
    }
    b.end();

    const SimConfig config = oneCoreConfig();
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc);
    for (int i = 0; i < 100; ++i)
        mgr.step();

    // Snapshot mid-flight (note: the scripted manager's in-flight
    // responses are part of the "world" here, so only snapshot at a
    // moment where none are pending).
    while (!mgr.inFlight_.empty())
        mgr.step();
    SnapshotWriter w;
    cc.save(w);

    const Tick t_snap = cc.localTime();
    std::vector<Tick> trace_a;
    while (!cc.finished()) {
        mgr.step();
        trace_a.push_back(cc.stats().committedInstrs);
    }

    SnapshotReader r(w.bytes());
    cc.restore(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(cc.localTime(), t_snap);

    MiniManager mgr2(cc);
    std::vector<Tick> trace_b;
    while (!cc.finished()) {
        mgr2.step();
        trace_b.push_back(cc.stats().committedInstrs);
    }
    EXPECT_EQ(trace_a, trace_b);
}

TEST(OooCore, RobOccupancyBounded)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.load(0x100000, 0);
    b.compute(500);
    b.end();

    SimConfig config = oneCoreConfig();
    config.target.core.robSize = 16;
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc, 100); // slow fill keeps the load at the head
    for (int i = 0; i < 50; ++i) {
        mgr.step();
        EXPECT_LE(cc.core().robOccupancy(), 16u);
    }
    runToCompletion(cc, mgr);
    EXPECT_EQ(cc.stats().committedInstrs, 501u);
}

TEST(OooCore, StoreBufferBackpressure)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    for (int i = 0; i < 32; ++i)
        b.store(0x400000 + static_cast<Addr>(i) * 64); // all miss
    b.end();

    SimConfig config = oneCoreConfig();
    config.target.core.sbSize = 2;
    CoreComplex cc(config, 0, &prog, 0x10000);
    MiniManager mgr(cc, 40);
    runToCompletion(cc, mgr, 500000);
    EXPECT_EQ(cc.stats().committedStores, 32u);
    EXPECT_GT(cc.stats().sbFullCycles, 0u);
}
