/**
 * @file
 * Unit tests for the pacing policy and the adaptive slack controller.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/pacer.hh"

using namespace slacksim;

namespace {

EngineConfig
engineFor(SchemeKind scheme)
{
    EngineConfig e;
    e.scheme = scheme;
    e.slackBound = 10;
    e.quantum = 8;
    e.adaptive.targetViolationRate = 0.01; // 1 violation / 100 cycles
    e.adaptive.violationBand = 0.05;
    e.adaptive.epochCycles = 100;
    e.adaptive.initialBound = 8;
    e.adaptive.minBound = 1;
    e.adaptive.maxBound = 64;
    return e;
}

} // namespace

TEST(Pacer, CycleByCycleTracksGlobal)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::CycleByCycle), 8, &host);
    EXPECT_EQ(p.maxLocalFor(0), 0u);
    EXPECT_EQ(p.maxLocalFor(123), 123u);
    EXPECT_TRUE(p.sortedService());
}

TEST(Pacer, BoundedAddsSlack)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Bounded), 8, &host);
    EXPECT_EQ(p.maxLocalFor(100), 110u);
    EXPECT_FALSE(p.sortedService());
    EXPECT_EQ(p.currentBound(), 10u);
}

TEST(Pacer, QuantumRunsToNextBoundary)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Quantum), 8, &host);
    EXPECT_EQ(p.maxLocalFor(0), 7u);
    EXPECT_EQ(p.maxLocalFor(7), 7u);
    EXPECT_EQ(p.maxLocalFor(8), 15u);
    EXPECT_EQ(p.maxLocalFor(15), 15u);
    EXPECT_FALSE(p.sortedService());
}

TEST(Pacer, UnboundedNeverLimits)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Unbounded), 8, &host);
    EXPECT_GT(p.maxLocalFor(0), Tick{1} << 60);
}

TEST(Pacer, ReplayModeForcesCycleByCycle)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Bounded), 8, &host);
    p.setReplayMode(true);
    EXPECT_EQ(p.maxLocalFor(100), 100u);
    EXPECT_TRUE(p.sortedService());
    p.setReplayMode(false);
    EXPECT_EQ(p.maxLocalFor(100), 110u);
}

TEST(AdaptiveController, IncreasesBoundWhenRateBelowBand)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Adaptive), 8, &host);
    EXPECT_EQ(p.currentBound(), 8u);
    ViolationStats v; // zero violations
    p.observe(100, v);
    EXPECT_GT(p.currentBound(), 8u);
    EXPECT_EQ(host.slackAdjustments, 1u);
}

TEST(AdaptiveController, DecreasesBoundWhenRateAboveBand)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Adaptive), 8, &host);
    ViolationStats v;
    v.busViolations = 50; // rate 0.5 >> 0.01 target
    p.observe(100, v);
    EXPECT_LT(p.currentBound(), 8u);
}

TEST(AdaptiveController, DeadZoneHoldsBound)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Adaptive), 8, &host);
    ViolationStats v;
    v.busViolations = 1; // rate exactly at target (1/100)
    p.observe(100, v);
    EXPECT_EQ(p.currentBound(), 8u);
    EXPECT_EQ(host.slackAdjustments, 0u);
}

TEST(AdaptiveController, RespectsEpochPeriod)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Adaptive), 8, &host);
    ViolationStats v;
    p.observe(50, v); // before the first epoch boundary
    EXPECT_EQ(p.currentBound(), 8u);
    p.observe(100, v);
    const Tick after_first = p.currentBound();
    EXPECT_GT(after_first, 8u);
    p.observe(150, v); // within the new epoch: no change
    EXPECT_EQ(p.currentBound(), after_first);
}

TEST(AdaptiveController, ClampsToMinAndMax)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::Adaptive);
    Pacer p(e, 8, &host);
    ViolationStats heavy;
    heavy.busViolations = 1000000;
    for (Tick t = 100; t <= 5000; t += 100)
        p.observe(t, heavy);
    EXPECT_EQ(p.currentBound(), e.adaptive.minBound);

    Pacer q(e, 8, &host);
    ViolationStats none;
    for (Tick t = 100; t <= 20000; t += 100)
        q.observe(t, none);
    EXPECT_EQ(q.currentBound(), e.adaptive.maxBound);
}

TEST(AdaptiveController, CountsSelectedViolationTypesOnly)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::Adaptive);
    e.adaptive.adaptOnBus = false; // only map violations count
    Pacer p(e, 8, &host);
    ViolationStats v;
    v.busViolations = 1000; // ignored
    p.observe(100, v);
    EXPECT_GT(p.currentBound(), 8u); // rate counted as 0 -> grow
}

TEST(AdaptiveController, SnapshotRoundTrip)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::Adaptive), 8, &host);
    ViolationStats none;
    p.observe(100, none);
    const Tick bound = p.currentBound();

    SnapshotWriter w;
    p.save(w);
    p.observe(200, none);
    EXPECT_NE(p.currentBound(), bound);

    SnapshotReader r(w.bytes());
    p.restore(r);
    EXPECT_EQ(p.currentBound(), bound);
    EXPECT_TRUE(r.exhausted());
}

TEST(LaxP2P, PacesAgainstPeerNotGlobal)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::LaxP2P);
    e.slackBound = 5;
    Pacer p(e, 4, &host);
    std::vector<Tick> locals = {100, 200, 300, 400};
    for (CoreId c = 0; c < 4; ++c) {
        const Tick limit = p.maxLocalForCore(c, 100, locals);
        // The limit is some peer's local + bound, never own + bound.
        bool matches_a_peer = false;
        for (CoreId o = 0; o < 4; ++o)
            if (o != c && limit == locals[o] + 5)
                matches_a_peer = true;
        EXPECT_TRUE(matches_a_peer) << "core " << c;
    }
}

TEST(LaxP2P, SlowestCoreCanAlwaysRun)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::LaxP2P);
    e.slackBound = 3;
    e.p2pShufflePeriod = 50;
    Pacer p(e, 8, &host);
    std::vector<Tick> locals(8);
    for (int round = 0; round < 200; ++round) {
        // Slowest core is index round % 8 at time 10*round.
        const Tick g = 10 * static_cast<Tick>(round);
        for (CoreId c = 0; c < 8; ++c)
            locals[c] = g + (c == round % 8 ? 0 : 1 + c);
        const CoreId slow = round % 8;
        const Tick limit = p.maxLocalForCore(slow, g, locals);
        EXPECT_GE(limit, locals[slow]) << "deadlock at round " << round;
    }
}

TEST(LaxP2P, ReshufflesPeriodically)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::LaxP2P);
    e.p2pShufflePeriod = 10;
    Pacer p(e, 8, &host);
    std::vector<Tick> locals(8, 0);
    // Sample limits over many shuffle periods with asymmetric locals;
    // if peers never changed, core 0's limit would be constant.
    for (CoreId c = 0; c < 8; ++c)
        locals[c] = 1000 * (c + 1);
    std::set<Tick> seen;
    for (Tick t = 0; t < 2000; t += 10)
        seen.insert(p.maxLocalForCore(0, t, locals));
    EXPECT_GT(seen.size(), 2u);
}

TEST(LaxP2P, ReplayModeOverridesPeers)
{
    HostStats host;
    Pacer p(engineFor(SchemeKind::LaxP2P), 4, &host);
    p.setReplayMode(true);
    std::vector<Tick> locals = {7, 900, 900, 900};
    EXPECT_EQ(p.maxLocalForCore(1, 7, locals), 7u);
    EXPECT_TRUE(p.sortedService());
}

TEST(LaxP2P, SnapshotRestoresPairings)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::LaxP2P);
    e.p2pShufflePeriod = 1000000; // no reshuffle during the test
    Pacer p(e, 8, &host);
    std::vector<Tick> locals = {10, 20, 30, 40, 50, 60, 70, 80};
    std::vector<Tick> limits_before;
    for (CoreId c = 0; c < 8; ++c)
        limits_before.push_back(p.maxLocalForCore(c, 10, locals));

    SnapshotWriter w;
    p.save(w);
    SnapshotReader r(w.bytes());
    Pacer q(e, 8, &host);
    q.restore(r);
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(q.maxLocalForCore(c, 10, locals), limits_before[c]);
}

TEST(AdaptiveController, WindowedRateUsesPerEpochDeltas)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::Adaptive);
    e.adaptive.windowedRate = true;
    Pacer p(e, 8, &host);
    ViolationStats v;

    // Epoch 1: a burst of violations far above target -> shrink.
    v.busViolations = 50;
    p.observe(100, v);
    const Tick after_burst = p.currentBound();
    EXPECT_LT(after_burst, 8u);

    // Epoch 2: no NEW violations. The cumulative controller would
    // still see rate 50/200 >> target and shrink again; the windowed
    // one sees 0/100 < target and grows.
    p.observe(200, v);
    EXPECT_GT(p.currentBound(), after_burst);
}

TEST(AdaptiveController, CumulativeRateKeepsHistory)
{
    HostStats host;
    EngineConfig e = engineFor(SchemeKind::Adaptive);
    e.adaptive.windowedRate = false; // paper default
    Pacer p(e, 8, &host);
    ViolationStats v;
    v.busViolations = 50;
    p.observe(100, v);
    const Tick after_burst = p.currentBound();
    p.observe(200, v); // rate 50/200 = 0.25 still >> 0.01 -> shrink
    EXPECT_LE(p.currentBound(), after_burst);
}
