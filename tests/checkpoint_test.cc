/**
 * @file
 * Tests for checkpointing, the per-interval measurements (Tables 3/4
 * machinery), full speculative rollback + cycle-by-cycle replay, and
 * whole-world snapshot round-trips.
 */

#include <gtest/gtest.h>

#include "core/run.hh"
#include "core/sim_system.hh"
#include "workload/kernels.hh"

using namespace slacksim;

namespace {

SimConfig
measureConfig(const std::string &kernel, Tick interval,
              bool parallel_host)
{
    SimConfig config;
    config.workload.kernel = kernel;
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 2000;
    config.workload.fftPoints = 1024;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 1e-4;
    config.engine.adaptive.initialBound = 16;
    config.engine.parallelHost = parallel_host;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.interval = interval;
    return config;
}

} // namespace

TEST(CheckpointMeasure, IntervalsCoverTheRun)
{
    const auto r = runSimulation(measureConfig("falseshare", 2000,
                                               false));
    EXPECT_GT(r.host.checkpointsTaken, 1u);
    EXPECT_GT(r.host.checkpointBytes, 10000u);
    // One interval per checkpoint except the last open one.
    EXPECT_EQ(r.intervals.size(), r.host.checkpointsTaken - 1);
    for (std::size_t i = 0; i < r.intervals.size(); ++i) {
        EXPECT_EQ(r.intervals[i].start, i * 2000);
        if (r.intervals[i].violated())
            EXPECT_LT(r.intervals[i].firstViolationOffset, 2000u);
    }
    EXPECT_EQ(r.host.rollbacks, 0u); // measurement never rolls back
}

TEST(CheckpointMeasure, FractionRisesWithInterval)
{
    // Larger intervals are more likely to contain a violation
    // (paper Table 3's trend).
    const auto r_small =
        runSimulation(measureConfig("falseshare", 500, false));
    const auto r_large =
        runSimulation(measureConfig("falseshare", 8000, false));
    ASSERT_GT(r_small.intervals.size(), 2u);
    ASSERT_GT(r_large.intervals.size(), 0u);
    EXPECT_LE(r_small.fractionIntervalsViolated() - 0.3,
              r_large.fractionIntervalsViolated());
}

TEST(CheckpointMeasure, WorksOnParallelHost)
{
    const auto r =
        runSimulation(measureConfig("falseshare", 2000, true));
    EXPECT_GT(r.host.checkpointsTaken, 1u);
    EXPECT_EQ(r.host.rollbacks, 0u);
    EXPECT_GT(r.intervals.size(), 0u);
}

TEST(CheckpointMeasure, MeasureModeDoesNotChangeResults)
{
    // Checkpointing quiesces the world but must not perturb the
    // simulated outcome of a deterministic (serial, CC) run.
    SimConfig plain = measureConfig("pingpong", 2000, false);
    plain.engine.scheme = SchemeKind::CycleByCycle;
    plain.workload.iters = 500;
    SimConfig with_cp = plain;
    plain.engine.checkpoint.mode = CheckpointMode::Off;

    const auto r_plain = runSimulation(plain);
    const auto r_cp = runSimulation(with_cp);
    EXPECT_EQ(r_plain.execCycles, r_cp.execCycles);
    EXPECT_EQ(r_plain.committedUops, r_cp.committedUops);
    EXPECT_EQ(r_plain.coreTotal.l1dMisses, r_cp.coreTotal.l1dMisses);
    EXPECT_EQ(r_plain.uncore.busRequests, r_cp.uncore.busRequests);
}

TEST(Speculative, RollsBackAndStillCompletes)
{
    SimConfig config = measureConfig("falseshare", 2000, false);
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.adaptive.initialBound = 64; // provoke violations
    config.engine.adaptive.targetViolationRate = 0.05;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.rollbacks, 0u);
    EXPECT_GT(r.host.replayCycles, 0u);
    EXPECT_GT(r.host.wastedCycles, 0u);
    // Despite rollbacks, the run completes the whole trace exactly.
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
}

TEST(Speculative, WorksOnParallelHost)
{
    SimConfig config = measureConfig("falseshare", 2000, true);
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.adaptive.initialBound = 64;
    config.engine.adaptive.targetViolationRate = 0.05;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.rollbacks, 0u);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
}

TEST(Speculative, SerialSpeculativeIsDeterministic)
{
    SimConfig config = measureConfig("falseshare", 1000, false);
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.adaptive.initialBound = 32;
    config.engine.adaptive.targetViolationRate = 0.05;
    const auto a = runSimulation(config);
    const auto b = runSimulation(config);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.committedUops, b.committedUops);
    EXPECT_EQ(a.host.rollbacks, b.host.rollbacks);
    EXPECT_EQ(a.host.wastedCycles, b.host.wastedCycles);
}

TEST(Speculative, AsyncSealMatchesSyncSealExactly)
{
    // Moving the seal (integrity trailer + emulated extra copy) to a
    // background thread must be invisible to the simulation: the
    // pending generation promotes at the next checkpoint, rollback or
    // finalize join, before anything can consume it.
    SimConfig sync_cfg = measureConfig("falseshare", 1000, false);
    sync_cfg.engine.checkpoint.mode = CheckpointMode::Speculative;
    sync_cfg.engine.adaptive.initialBound = 32;
    sync_cfg.engine.adaptive.targetViolationRate = 0.05;
    SimConfig async_cfg = sync_cfg;
    sync_cfg.engine.checkpoint.asyncSeal = false;
    async_cfg.engine.checkpoint.asyncSeal = true;

    const auto s = runSimulation(sync_cfg);
    const auto a = runSimulation(async_cfg);
    EXPECT_EQ(s.execCycles, a.execCycles);
    EXPECT_EQ(s.committedUops, a.committedUops);
    EXPECT_EQ(s.host.checkpointsTaken, a.host.checkpointsTaken);
    EXPECT_EQ(s.host.rollbacks, a.host.rollbacks);
    EXPECT_EQ(s.host.wastedCycles, a.host.wastedCycles);
    EXPECT_EQ(s.host.replayCycles, a.host.replayCycles);
}

TEST(Speculative, AsyncSealReportsBackgroundTime)
{
    // The async run books the seal's busy time as background host
    // time; the sync run books everything on the critical path and
    // must report zero background seconds.
    SimConfig config = measureConfig("falseshare", 1000, false);
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.adaptive.initialBound = 32;
    config.engine.adaptive.targetViolationRate = 0.05;

    SimConfig sync_cfg = config;
    sync_cfg.engine.checkpoint.asyncSeal = false;
    const auto s = runSimulation(sync_cfg);
    ASSERT_GT(s.host.checkpointsTaken, 1u);
    EXPECT_EQ(s.host.checkpointAsyncSeconds, 0.0);
    EXPECT_GT(s.host.checkpointSeconds, 0.0);

    const auto a = runSimulation(config);
    ASSERT_GT(a.host.checkpointsTaken, 1u);
    EXPECT_GT(a.host.checkpointAsyncSeconds, 0.0);
}

TEST(Speculative, AsyncSealWorksOnParallelHost)
{
    SimConfig config = measureConfig("falseshare", 2000, true);
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.asyncSeal = true;
    config.engine.adaptive.initialBound = 64;
    config.engine.adaptive.targetViolationRate = 0.05;
    const Workload w = makeWorkload(config.workload);
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.rollbacks, 0u);
    EXPECT_EQ(r.committedUops, w.totalMicroOps());
    EXPECT_GT(r.host.checkpointAsyncSeconds, 0.0);
}

TEST(Speculative, SelectiveRollbackOnMapOnlyRollsBackLess)
{
    // The paper suggests ignoring bus violations and rolling back on
    // the rare map violations only.
    SimConfig all = measureConfig("falseshare", 1000, false);
    all.engine.checkpoint.mode = CheckpointMode::Speculative;
    all.engine.adaptive.initialBound = 32;
    all.engine.adaptive.targetViolationRate = 0.05;
    SimConfig map_only = all;
    map_only.engine.checkpoint.rollbackOnBus = false;

    const auto r_all = runSimulation(all);
    const auto r_map = runSimulation(map_only);
    EXPECT_LE(r_map.host.rollbacks, r_all.host.rollbacks);
}

TEST(Speculative, CycleByCycleBaseNeverRollsBack)
{
    SimConfig config = measureConfig("falseshare", 1000, false);
    config.engine.scheme = SchemeKind::CycleByCycle;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.workload.iters = 500;
    const auto r = runSimulation(config);
    EXPECT_EQ(r.host.rollbacks, 0u);
    EXPECT_EQ(r.violations.total(), 0u);
}

TEST(Checkpointer, ExtraCopyBytesArenaWorks)
{
    SimConfig config = measureConfig("pingpong", 1000, false);
    config.workload.iters = 300;
    config.engine.checkpoint.extraCopyBytes = 8 * 1024 * 1024;
    const auto r = runSimulation(config);
    EXPECT_GT(r.host.checkpointsTaken, 0u);
    EXPECT_GT(r.host.checkpointSeconds, 0.0);
}

TEST(SimSystem, WholeWorldSnapshotRoundTrip)
{
    SimConfig config = measureConfig("uniform", 1000, false);
    config.workload.iters = 500;
    SimSystem sys(config);

    SnapshotWriter w0;
    sys.save(w0);
    const std::size_t size0 = w0.size();

    // Restoring the initial snapshot into the same world must be a
    // no-op: a second save produces identical bytes.
    SnapshotReader r(w0.bytes());
    sys.restore(r);
    EXPECT_TRUE(r.exhausted());
    SnapshotWriter w1;
    sys.save(w1);
    EXPECT_EQ(w1.size(), size0);
    EXPECT_EQ(w1.bytes(), w0.bytes());
}

TEST(SimSystem, AccessorsOnFreshWorld)
{
    SimConfig config = measureConfig("pingpong", 1000, false);
    SimSystem sys(config);
    EXPECT_EQ(sys.numCores(), 8u);
    EXPECT_EQ(sys.globalTime(), 0u);
    EXPECT_EQ(sys.maxLocalTime(), 0u);
    EXPECT_FALSE(sys.allFinished());
    EXPECT_EQ(sys.totalCommittedUops(), 0u);
    EXPECT_EQ(sys.workload().name, "pingpong");
}
