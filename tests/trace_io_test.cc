/**
 * @file
 * Tests for workload trace serialization and the histogram utility.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/histogram.hh"
#include "workload/kernels.hh"
#include "workload/trace_io.hh"
#include "workload/trace_stats.hh"

using namespace slacksim;

namespace {

std::string
tmpPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

struct FileGuard
{
    explicit FileGuard(std::string p)
        : path(std::move(p))
    {
    }
    ~FileGuard() { std::remove(path.c_str()); }
    std::string path;
};

} // namespace

TEST(TraceIo, RoundTripPreservesEverything)
{
    WorkloadParams params;
    params.kernel = "water";
    params.numThreads = 4;
    params.molecules = 16;
    const Workload original = makeWorkload(params);

    FileGuard file(tmpPath("water_trace.bin"));
    saveWorkload(original, file.path);
    const Workload loaded = loadWorkload(file.path);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.numLocks, original.numLocks);
    EXPECT_EQ(loaded.numBarriers, original.numBarriers);
    EXPECT_EQ(loaded.sharedFootprintBytes,
              original.sharedFootprintBytes);
    ASSERT_EQ(loaded.threads.size(), original.threads.size());
    for (std::size_t t = 0; t < original.threads.size(); ++t) {
        EXPECT_EQ(loaded.threads[t].codeFootprint,
                  original.threads[t].codeFootprint);
        const auto &a = original.threads[t].instrs;
        const auto &b = loaded.threads[t].instrs;
        ASSERT_EQ(a.size(), b.size());
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 a.size() * sizeof(TraceInstr)));
    }
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_DEATH(loadWorkload("/nonexistent/path/trace.bin"),
                 "cannot open");
}

TEST(TraceIo, GarbageFileIsFatal)
{
    FileGuard file(tmpPath("garbage.bin"));
    {
        std::ofstream out(file.path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    EXPECT_DEATH(loadWorkload(file.path), "not a slacksim trace");
}

TEST(TraceIo, TruncatedFileIsFatal)
{
    WorkloadParams params;
    params.kernel = "pingpong";
    params.numThreads = 2;
    params.iters = 10;
    const Workload w = makeWorkload(params);
    FileGuard file(tmpPath("truncated.bin"));
    saveWorkload(w, file.path);

    // Chop the file in half.
    std::ifstream in(file.path, std::ios::binary);
    std::stringstream whole;
    whole << in.rdbuf();
    const std::string bytes = whole.str();
    in.close();
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();

    EXPECT_DEATH(loadWorkload(file.path), "short read");
}

TEST(Histogram, BucketsAndStats)
{
    Log2Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);

    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(100);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 106u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 5);

    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(h.bucketCount(2), 2u); // values 2 and 3
}

TEST(Histogram, PercentilesAreMonotone)
{
    Log2Histogram h;
    for (std::uint64_t i = 1; i <= 1000; ++i)
        h.add(i);
    const auto p10 = h.percentile(10);
    const auto p50 = h.percentile(50);
    const auto p99 = h.percentile(99);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, h.max());
    EXPECT_GE(p50, 256u); // true p50 is 500; bucket upper bound >= it
}

TEST(Histogram, MergeAndClear)
{
    Log2Histogram a, b;
    a.add(5);
    a.add(10);
    b.add(100);
    a.add(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_EQ(a.min(), 5u);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
}

TEST(Histogram, PrintContainsSummary)
{
    Log2Histogram h;
    h.add(7);
    h.add(9);
    std::ostringstream os;
    h.print(os, "demo");
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("n=2"), std::string::npos);
    EXPECT_NE(os.str().find("#"), std::string::npos);
}

TEST(TraceStats, CountsOperationMixExactly)
{
    TraceProgram prog;
    TraceBuilder b(prog);
    b.barrier(0);
    b.compute(10);
    b.load(0x1000, 0);
    b.load(0x1008, 0); // same line as the first load
    b.store(0x2000);
    b.lock(0);
    b.unlock(0);
    b.barrier(0);
    b.end();
    Workload w;
    w.name = "tiny";
    w.numLocks = 1;
    w.numBarriers = 1;
    w.threads.push_back(prog);

    const WorkloadStats s = analyzeWorkload(w);
    EXPECT_EQ(s.threads, 1u);
    EXPECT_EQ(s.computeUops, 10u);
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.lockPairs, 1u);
    EXPECT_EQ(s.barrierArrivals, 2u);
    EXPECT_EQ(s.totalUops(), 10u + 2 + 1 + 2 + 2);
    EXPECT_EQ(s.totalLines, 2u); // 0x1000-line and 0x2000-line
    EXPECT_EQ(s.sharedLines, 0u);
    EXPECT_EQ(s.maxSharers, 1u);
}

TEST(TraceStats, DetectsReadWriteSharing)
{
    Workload w;
    w.name = "sharing";
    w.numLocks = 0;
    w.numBarriers = 1;
    w.threads.resize(2);
    {
        TraceBuilder b(w.threads[0]);
        b.barrier(0);
        b.store(0x1000); // writer
        b.load(0x2000, 0); // read-only shared line
        b.end();
    }
    {
        TraceBuilder b(w.threads[1]);
        b.barrier(0);
        b.load(0x1000, 0); // reader of thread 0's line
        b.load(0x2000, 0);
        b.end();
    }
    const WorkloadStats s = analyzeWorkload(w);
    EXPECT_EQ(s.totalLines, 2u);
    EXPECT_EQ(s.sharedLines, 2u);
    EXPECT_EQ(s.rwSharedLines, 1u); // only the written line
    EXPECT_EQ(s.maxSharers, 2u);
    EXPECT_DOUBLE_EQ(s.sharedFraction(), 1.0);
}

TEST(TraceStats, SplashKernelsMatchTheirCharacters)
{
    WorkloadParams p;
    p.numThreads = 8;
    p.fftPoints = 1024;
    p.matrixN = 32;
    p.blockB = 8;
    p.molecules = 32;
    p.iters = 200;
    p.footprintBytes = 64 * 1024;

    p.kernel = "stream";
    const auto s_stream = analyzeWorkload(makeWorkload(p));
    EXPECT_DOUBLE_EQ(s_stream.sharedFraction(), 0.0);

    p.kernel = "falseshare";
    const auto s_false = analyzeWorkload(makeWorkload(p));
    EXPECT_GT(s_false.sharedFraction(), 0.9);
    EXPECT_EQ(s_false.maxSharers, 8u);

    p.kernel = "fft";
    const auto s_fft = analyzeWorkload(makeWorkload(p));
    EXPECT_GT(s_fft.sharedFraction(), 0.3); // transposes share rows
    EXPECT_GT(s_fft.rwSharedLines, 100u);

    p.kernel = "water";
    const auto s_water = analyzeWorkload(makeWorkload(p));
    EXPECT_GT(s_water.lockPairs, 100u); // per-molecule locks
}

TEST(TraceStats, PrintIsReadable)
{
    WorkloadParams p;
    p.kernel = "pingpong";
    p.numThreads = 4;
    p.iters = 10;
    const auto s = analyzeWorkload(makeWorkload(p));
    std::ostringstream os;
    printWorkloadStats(os, "pingpong", s);
    EXPECT_NE(os.str().find("micro-ops"), std::string::npos);
    EXPECT_NE(os.str().find("shared lines"), std::string::npos);
}
