/**
 * @file
 * Unit tests for the L1 cache: hit/miss behavior, MESI transitions,
 * MSHR allocation and merging, eviction writebacks, snoops, LRU and
 * snapshot round-trips. Includes a randomized property sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/l1_cache.hh"
#include "stats/stats.hh"
#include "util/rng.hh"

using namespace slacksim;

namespace {

L1Params
smallL1(std::uint32_t sets = 4, std::uint32_t ways = 2,
        std::uint32_t mshrs = 4)
{
    L1Params p;
    p.sets = sets;
    p.ways = ways;
    p.lineBytes = 64;
    p.mshrs = mshrs;
    p.hitLatency = 1;
    p.instructionCache = false;
    return p;
}

L1Waiter
loadWaiter(std::uint16_t idx = 0)
{
    L1Waiter w;
    w.kind = L1Waiter::Kind::LoadRob;
    w.index = idx;
    return w;
}

BusMsg
fillMsg(Addr line, MesiState state)
{
    BusMsg m;
    m.type = MsgType::Fill;
    m.addr = line;
    m.grantState = static_cast<std::uint8_t>(state);
    m.cache = CacheKind::Data;
    m.ts = 10;
    return m;
}

} // namespace

TEST(L1Cache, ColdLoadMissesAndEmitsGetS)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    EXPECT_EQ(cache.accessLoad(0x1000, loadWaiter(), 5, out),
              L1Result::Miss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::GetS);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(out[0].ts, 5u);
    EXPECT_EQ(stats.l1dMisses, 1u);
    EXPECT_TRUE(cache.mshrPending(0x1000));
}

TEST(L1Cache, FillThenHitAndWaiterWoken)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    cache.accessLoad(0x1000, loadWaiter(7), 5, out);
    out.clear();

    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x1000, MesiState::Exclusive), 10, out,
                    waiters);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0].index, 7u);
    EXPECT_FALSE(cache.mshrPending(0x1000));
    EXPECT_EQ(cache.probe(0x1000), MesiState::Exclusive);

    EXPECT_EQ(cache.accessLoad(0x1008, loadWaiter(), 11, out),
              L1Result::Hit); // same line, different offset
    EXPECT_EQ(stats.l1dHits, 1u);
}

TEST(L1Cache, LoadMergesIntoPendingMshr)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    cache.accessLoad(0x2000, loadWaiter(1), 0, out);
    EXPECT_EQ(cache.accessLoad(0x2010, loadWaiter(2), 1, out),
              L1Result::Merged);
    EXPECT_EQ(out.size(), 1u); // only one bus request
    EXPECT_EQ(stats.l1dMshrMerges, 1u);

    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x2000, MesiState::Shared), 5, out, waiters);
    EXPECT_EQ(waiters.size(), 2u);
}

TEST(L1Cache, MshrExhaustionBlocks)
{
    CoreStats stats;
    L1Cache cache(smallL1(4, 2, 2), 0, &stats);
    std::vector<BusMsg> out;
    EXPECT_EQ(cache.accessLoad(0x1000, loadWaiter(), 0, out),
              L1Result::Miss);
    EXPECT_EQ(cache.accessLoad(0x2000, loadWaiter(), 0, out),
              L1Result::Miss);
    EXPECT_EQ(cache.accessLoad(0x3000, loadWaiter(), 0, out),
              L1Result::Blocked);
    EXPECT_EQ(stats.l1dMshrFullEvents, 1u);
    EXPECT_EQ(cache.mshrsInUse(), 2u);
}

TEST(L1Cache, StoreHitRequiresOwnership)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;

    // Shared line: store must upgrade.
    cache.accessLoad(0x1000, loadWaiter(), 0, out);
    cache.applyFill(fillMsg(0x1000, MesiState::Shared), 2, out, waiters);
    out.clear();
    EXPECT_EQ(cache.accessStore(0x1000, 3, out), L1Result::Miss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::Upgrade);
    EXPECT_EQ(stats.l1dUpgrades, 1u);

    // Upgrade ack makes it writable.
    BusMsg ack;
    ack.type = MsgType::UpgradeAck;
    ack.addr = 0x1000;
    ack.cache = CacheKind::Data;
    out.clear();
    waiters.clear();
    cache.applyFill(ack, 5, out, waiters);
    EXPECT_EQ(cache.probe(0x1000), MesiState::Modified);
    EXPECT_EQ(cache.accessStore(0x1000, 6, out), L1Result::Hit);
}

TEST(L1Cache, StoreToExclusiveSilentlyUpgrades)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    cache.accessLoad(0x1000, loadWaiter(), 0, out);
    cache.applyFill(fillMsg(0x1000, MesiState::Exclusive), 2, out,
                    waiters);
    out.clear();
    EXPECT_EQ(cache.accessStore(0x1000, 3, out), L1Result::Hit);
    EXPECT_TRUE(out.empty()); // E->M is silent
    EXPECT_EQ(cache.probe(0x1000), MesiState::Modified);
}

TEST(L1Cache, ColdStoreEmitsGetM)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    EXPECT_EQ(cache.accessStore(0x4000, 0, out), L1Result::Miss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::GetM);
}

TEST(L1Cache, StoreBlockedBehindPendingLoadMshr)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    cache.accessLoad(0x1000, loadWaiter(), 0, out);
    EXPECT_EQ(cache.accessStore(0x1000, 1, out), L1Result::Blocked);
}

TEST(L1Cache, DirtyEvictionEmitsPutM)
{
    CoreStats stats;
    // One set, one way: every new line evicts the previous one.
    L1Cache cache(smallL1(1, 1, 4), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x1000, MesiState::Modified), 1, out,
                    waiters);
    EXPECT_TRUE(out.empty());
    cache.applyFill(fillMsg(0x2000, MesiState::Shared), 2, out, waiters);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::PutM);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(stats.l1dWritebacks, 1u);
    // Clean eviction is silent.
    out.clear();
    cache.applyFill(fillMsg(0x3000, MesiState::Shared), 3, out, waiters);
    EXPECT_TRUE(out.empty());
}

TEST(L1Cache, LruEvictsOldest)
{
    CoreStats stats;
    L1Cache cache(smallL1(1, 2, 4), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x1000, MesiState::Shared), 1, out, waiters);
    cache.applyFill(fillMsg(0x2000, MesiState::Shared), 2, out, waiters);
    // Touch 0x1000 so 0x2000 becomes LRU.
    cache.accessLoad(0x1000, loadWaiter(), 3, out);
    cache.applyFill(fillMsg(0x3000, MesiState::Shared), 4, out, waiters);
    EXPECT_EQ(cache.probe(0x1000), MesiState::Shared);
    EXPECT_EQ(cache.probe(0x2000), MesiState::Invalid);
    EXPECT_EQ(cache.probe(0x3000), MesiState::Shared);
}

TEST(L1Cache, SnoopInvalidateAndDowngrade)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x1000, MesiState::Modified), 1, out,
                    waiters);
    cache.applyFill(fillMsg(0x2000, MesiState::Shared), 2, out, waiters);

    BusMsg inv;
    inv.type = MsgType::SnoopInv;
    inv.addr = 0x2000;
    cache.applySnoop(inv);
    EXPECT_EQ(cache.probe(0x2000), MesiState::Invalid);
    EXPECT_EQ(stats.snoopInvalidations, 1u);

    BusMsg down;
    down.type = MsgType::SnoopDown;
    down.addr = 0x1000;
    cache.applySnoop(down);
    EXPECT_EQ(cache.probe(0x1000), MesiState::Shared);
    EXPECT_EQ(stats.snoopDowngrades, 1u);

    // Stale snoop to an absent line is a harmless no-op.
    BusMsg stale;
    stale.type = MsgType::SnoopInv;
    stale.addr = 0x9000;
    cache.applySnoop(stale);
    EXPECT_EQ(stats.snoopInvalidations, 1u);
}

TEST(L1Cache, InstructionCacheFetches)
{
    CoreStats stats;
    L1Params p = smallL1();
    p.instructionCache = true;
    L1Cache cache(p, 0, &stats);
    std::vector<BusMsg> out;
    EXPECT_EQ(cache.accessFetch(0x5000, 0, out), L1Result::Miss);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].cache, CacheKind::Instr);
    EXPECT_EQ(stats.l1iMisses, 1u);

    std::vector<L1Waiter> waiters;
    BusMsg fill = fillMsg(0x5000, MesiState::Shared);
    fill.cache = CacheKind::Instr;
    cache.applyFill(fill, 2, out, waiters);
    ASSERT_EQ(waiters.size(), 1u);
    EXPECT_EQ(waiters[0].kind, L1Waiter::Kind::Frontend);
    EXPECT_EQ(cache.accessFetch(0x5000, 3, out), L1Result::Hit);
    EXPECT_EQ(stats.l1iHits, 1u);
}

TEST(L1Cache, SnapshotRoundTrip)
{
    CoreStats stats;
    L1Cache cache(smallL1(), 0, &stats);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    cache.applyFill(fillMsg(0x1000, MesiState::Modified), 1, out,
                    waiters);
    cache.accessLoad(0x2000, loadWaiter(3), 2, out);

    SnapshotWriter w;
    cache.save(w);

    // Mutate.
    BusMsg inv;
    inv.type = MsgType::SnoopInv;
    inv.addr = 0x1000;
    cache.applySnoop(inv);
    cache.applyFill(fillMsg(0x2000, MesiState::Shared), 4, out, waiters);
    EXPECT_EQ(cache.probe(0x1000), MesiState::Invalid);

    // Restore and verify the pre-mutation view.
    SnapshotReader r(w.bytes());
    cache.restore(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(cache.probe(0x1000), MesiState::Modified);
    EXPECT_EQ(cache.probe(0x2000), MesiState::Invalid);
    EXPECT_TRUE(cache.mshrPending(0x2000));
}

/** Property sweep: random access streams keep structural invariants. */
class L1Property
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(L1Property, RandomStreamKeepsInvariants)
{
    const auto [sets, ways, seed] = GetParam();
    CoreStats stats;
    L1Cache cache(smallL1(sets, ways, 4), 0, &stats);
    Rng rng(seed);
    std::vector<BusMsg> out;
    std::vector<L1Waiter> waiters;
    std::vector<Addr> pendingFills;

    for (int i = 0; i < 5000; ++i) {
        const Addr addr = rng.below(64) * 64; // 64-line footprint
        const int action = static_cast<int>(rng.below(100));
        out.clear();
        if (action < 40) {
            if (cache.accessLoad(addr, loadWaiter(), i, out) ==
                L1Result::Miss)
                pendingFills.push_back(addr);
        } else if (action < 70) {
            if (cache.accessStore(addr, i, out) == L1Result::Miss)
                pendingFills.push_back(addr);
        } else if (action < 85 && !pendingFills.empty()) {
            const Addr line = pendingFills.back();
            pendingFills.pop_back();
            waiters.clear();
            const MesiState s = rng.chance(0.5) ? MesiState::Modified
                                                : MesiState::Shared;
            cache.applyFill(fillMsg(line, s), i, out, waiters);
        } else {
            BusMsg snoop;
            snoop.type =
                rng.chance(0.5) ? MsgType::SnoopInv : MsgType::SnoopDown;
            snoop.addr = addr;
            cache.applySnoop(snoop);
        }
        cache.checkInvariants();
        EXPECT_LE(cache.mshrsInUse(), 4u);
    }
    // Every hit+miss accounted.
    EXPECT_GT(stats.l1dHits + stats.l1dMisses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, L1Property,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 2, 2),
                      std::make_tuple(4, 2, 3), std::make_tuple(8, 4, 4),
                      std::make_tuple(16, 1, 5),
                      std::make_tuple(64, 4, 6)));
