/**
 * @file
 * Crash-proofing unit tests: job-spec validation of the isolation /
 * retry keys (every rejection site exercised with hostile input),
 * durable-journal replay and rotation, the fork/supervise protocol
 * (clean run, crash verdict, cancel escalation, rlimits), and
 * CheckedOfstream::sync() durability plumbing.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/resource.h>

#include <gtest/gtest.h>

#include "serve/job_spec.hh"
#include "serve/journal.hh"
#include "serve/supervisor.hh"
#include "util/cancel.hh"
#include "util/io.hh"
#include "util/json_parse.hh"

using namespace slacksim;
using namespace slacksim::serve;

namespace {

/** Parse a spec and return the error ("" on acceptance). */
std::string
rejection(const std::string &text)
{
    JobSpec spec;
    std::string error;
    if (JobSpec::parse(json::parse(text), &spec, &error))
        return "";
    EXPECT_FALSE(error.empty()) << text;
    return error;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc);
    out << content;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// --- spec validation: the new wire-reachable keys -------------------

TEST(JobSpecIsolationTest, RejectsHostileInputPerSite)
{
    // Every branch added for crash-proofing, fed the wrong thing.
    // None of these may fatal() — they all must come back as protocol
    // errors (the daemon keeps running).
    EXPECT_NE(rejection(R"({"kernel": "fft", "isolation": 7})"), "");
    EXPECT_NE(
        rejection(R"({"kernel": "fft", "isolation": "proces"})")
            .find("did you mean 'process'"),
        std::string::npos);
    EXPECT_NE(
        rejection(R"({"kernel": "fft", "max_attempts": 0})")
            .find("[1, 10]"),
        std::string::npos);
    EXPECT_NE(
        rejection(R"({"kernel": "fft", "max_attempts": 11})")
            .find("[1, 10]"),
        std::string::npos);
    EXPECT_NE(rejection(R"({"kernel": "fft", "max_attempts": -3})"),
              "");
    EXPECT_NE(
        rejection(R"({"kernel": "fft", "rlimit_mem_mb": "lots"})"),
        "");
    EXPECT_NE(rejection(R"({"kernel": "fft", "rlimit_cpu_s": 1.5})"),
              "");
    // Typoed key gets the did-you-mean treatment like every other.
    EXPECT_NE(
        rejection(R"({"kernel": "fft", "isolaton": "process"})")
            .find("isolation"),
        std::string::npos);
}

TEST(JobSpecIsolationTest, WreckingFaultsRequireProcessIsolation)
{
    // job-crash / job-hang destroy the executing process; with
    // isolation pinned to inline they would kill the daemon, so the
    // validator refuses them up front.
    const std::string err = rejection(
        R"({"kernel": "fft", "isolation": "inline",
            "fault_spec": "job-crash@cycle:500"})");
    EXPECT_NE(err.find("process"), std::string::npos);
    EXPECT_NE(rejection(R"({"kernel": "fft", "isolation": "inline",
                 "fault_spec": "job-hang@cycle:500:1000"})"),
              "");
    // The same faults are fine when the spec asks for isolation, or
    // leaves the choice to the daemon (checked again at submit).
    EXPECT_EQ(rejection(R"({"kernel": "fft", "isolation": "process",
                 "fault_spec": "job-crash@cycle:500"})"),
              "");
    EXPECT_EQ(rejection(R"({"kernel": "fft",
                 "fault_spec": "job-hang@cycle:500:1000"})"),
              "");
}

TEST(JobSpecIsolationTest, DaemonKillWindowNeverAcceptedFromClients)
{
    // The daemon-restart drill is an operator knob on the serve
    // command line; a client submitting it is an unknown fault kind.
    EXPECT_NE(
        rejection(
            R"({"kernel": "fft", "isolation": "process",
                "fault_spec": "daemon-kill-window@start:1"})")
            .find("unknown fault kind"),
        std::string::npos);
}

TEST(JobSpecIsolationTest, NeedsProcessIsolationScansEveryEntry)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(JobSpec::parse(
        json::parse(R"({"kernel": "fft",
            "fault_spec": "worker-stall@cycle:500:2"})"),
        &spec, &error))
        << error;
    EXPECT_FALSE(spec.needsProcessIsolation());
    ASSERT_TRUE(JobSpec::parse(
        json::parse(R"({"kernel": "fft", "fault_spec":
            "worker-stall@cycle:500:2, job-crash@cycle:900"})"),
        &spec, &error))
        << error;
    EXPECT_TRUE(spec.needsProcessIsolation());
}

TEST(JobSpecIsolationTest, ToJsonRoundTripsIsolationKeys)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(JobSpec::parse(
        json::parse(R"({"kernel": "radix", "cores": 4,
            "isolation": "process", "max_attempts": 5,
            "rlimit_mem_mb": 2048, "rlimit_cpu_s": 30,
            "seed": 9})"),
        &spec, &error))
        << error;
    JobSpec back;
    ASSERT_TRUE(
        JobSpec::parse(json::parse(spec.toJson()), &back, &error))
        << error;
    EXPECT_EQ(back.isolation, "process");
    EXPECT_EQ(back.maxAttempts, 5u);
    EXPECT_EQ(back.rlimitMemMb, 2048u);
    EXPECT_EQ(back.rlimitCpuS, 30u);
    EXPECT_EQ(back.kernel, "radix");
    EXPECT_EQ(back.seed, 9u);
}

// --- journal replay -------------------------------------------------

TEST(JournalTest, ClassifiesQueuedRunningAndTerminalJobs)
{
    const std::string path = "journal_classify.jsonl";
    writeFile(
        path,
        "{\"schema\": \"slacksim.server_events.v1\"}\n"
        "{\"seq\": 1, \"event\": \"submitted\", \"job\": 1, "
        "\"attempt\": 1, \"max_attempts\": 3, "
        "\"idempotency_key\": \"k-1\", "
        "\"spec\": {\"kernel\": \"fft\", \"cores\": 2}}\n"
        "{\"seq\": 2, \"event\": \"started\", \"job\": 1}\n"
        "{\"seq\": 3, \"event\": \"completed\", \"job\": 1}\n"
        "{\"seq\": 4, \"event\": \"submitted\", \"job\": 2, "
        "\"attempt\": 2, \"max_attempts\": 5, "
        "\"spec\": {\"kernel\": \"radix\"}}\n"
        "{\"seq\": 5, \"event\": \"submitted\", \"job\": 3, "
        "\"spec\": {\"kernel\": \"lu\"}}\n"
        "{\"seq\": 6, \"event\": \"started\", \"job\": 3}\n"
        "{\"seq\": 7, \"event\": \"heartbeat\", \"job\": 99}\n"
        "{\"seq\": 8, \"event\": \"started\", \"jo"); // torn tail

    JournalReplay replay;
    ASSERT_TRUE(readJournal(path, &replay));
    std::remove(path.c_str());

    ASSERT_EQ(replay.jobs.size(), 3u);
    // Job 1 finished: nothing to replay.
    EXPECT_TRUE(replay.jobs[0].terminal);
    EXPECT_EQ(replay.jobs[0].idempotencyKey, "k-1");
    // Job 2 never started: re-admit as-is, attempt preserved.
    EXPECT_FALSE(replay.jobs[1].started);
    EXPECT_FALSE(replay.jobs[1].terminal);
    EXPECT_EQ(replay.jobs[1].attempt, 2u);
    EXPECT_EQ(replay.jobs[1].maxAttempts, 5u);
    // Job 3 was running at crash time.
    EXPECT_TRUE(replay.jobs[2].started);
    EXPECT_FALSE(replay.jobs[2].terminal);
    EXPECT_EQ(replay.jobs[2].attempt, 1u); // default when absent
    // The spec survives verbatim enough to resubmit.
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(JobSpec::parse(json::parse(replay.jobs[2].specJson),
                               &spec, &error))
        << error << " <- " << replay.jobs[2].specJson;
    EXPECT_EQ(spec.kernel, "lu");
    // Header + torn tail counted, not fatal.
    EXPECT_EQ(replay.linesRead, 9u);
    EXPECT_EQ(replay.linesSkipped, 2u);
}

TEST(JournalTest, MissingFileIsReportedNotFatal)
{
    JournalReplay replay;
    EXPECT_FALSE(readJournal("no_such_journal.jsonl", &replay));
    EXPECT_TRUE(replay.jobs.empty());
}

TEST(JournalTest, RotationArchivesGenerationsInOrder)
{
    const std::string path = "journal_rotate.jsonl";
    EXPECT_EQ(rotateJournal(path), ""); // nothing to rotate

    writeFile(path, "gen one\n");
    EXPECT_EQ(rotateJournal(path), path + ".1");
    writeFile(path, "gen two\n");
    EXPECT_EQ(rotateJournal(path), path + ".2");

    EXPECT_EQ(slurp(path + ".1"), "gen one\n");
    EXPECT_EQ(slurp(path + ".2"), "gen two\n");
    EXPECT_FALSE(std::ifstream(path).is_open()); // consumed
    std::remove((path + ".1").c_str());
    std::remove((path + ".2").c_str());
}

// --- fork/supervise protocol ----------------------------------------

namespace {

SimConfig
childConfig(const std::string &faultSpec)
{
    JobSpec spec;
    std::string error;
    std::string text = R"({"kernel": "fft", "cores": 2,
        "scheme": "quantum", "quantum": 16, "max_uops": 40000,
        "parallel_host": false, "isolation": "process")";
    if (!faultSpec.empty())
        text += ", \"fault_spec\": \"" + faultSpec + "\"";
    text += "}";
    EXPECT_TRUE(JobSpec::parse(json::parse(text), &spec, &error))
        << error;
    return spec.toConfig();
}

} // namespace

TEST(SupervisorTest, CleanChildReturnsAggregates)
{
    const SupervisedResult r = runIsolatedJob(
        childConfig(""), IsolationLimits{}, nullptr, nullptr);
    EXPECT_EQ(r.status, SupervisedResult::Status::Ok) << r.error;
    EXPECT_GE(r.committedUops, 40000u);
    EXPECT_GT(r.simulatedCycles, 0u);
    EXPECT_GE(r.spawnMs, 0.0);
    EXPECT_STREQ(supervisedStatusName(r.status), "ok");
}

TEST(SupervisorTest, SegfaultingChildYieldsCrashVerdict)
{
    // The job-crash fault raises SIGSEGV mid-simulation — inside the
    // child. The supervisor must classify it, not die with it.
    const SupervisedResult r =
        runIsolatedJob(childConfig("job-crash@cycle:500"),
                       IsolationLimits{}, nullptr, nullptr);
    EXPECT_EQ(r.status, SupervisedResult::Status::Crashed);
    EXPECT_EQ(r.signal, SIGSEGV);
    EXPECT_NE(r.error.find("SIGSEGV"), std::string::npos);
}

TEST(SupervisorTest, CancelEscalatesToKillOnUnresponsiveChild)
{
    // job-hang sleeps the child for 60s; a cancel can't drain
    // cooperatively, so after the grace window the supervisor must
    // SIGKILL — and classify the outcome as OUR cancel, not a crash.
    CancelToken cancel;
    cancel.requestCancel();
    IsolationLimits limits;
    limits.killGraceMs = 300;
    const SupervisedResult r =
        runIsolatedJob(childConfig("job-hang@cycle:500:60000"),
                       limits, &cancel, nullptr);
    EXPECT_EQ(r.status, SupervisedResult::Status::Cancelled);
}

TEST(SupervisorTest, MemoryRlimitTurnsRunawayIntoChildDeath)
{
    // 16 MiB of address space cannot hold the simulator; the child
    // dies (SIGSEGV from a failed allocation path or an abort from a
    // thrown bad_alloc) while the parent — this test — lives on.
    IsolationLimits limits;
    limits.memMb = 16;
    const SupervisedResult r = runIsolatedJob(
        childConfig(""), limits, nullptr, nullptr);
    EXPECT_NE(r.status, SupervisedResult::Status::Ok);
}

// --- durability plumbing --------------------------------------------

TEST(CheckedOfstreamTest, SyncReachesDiskAndReportsFailures)
{
    const std::string path = "sync_probe.txt";
    {
        CheckedOfstream os(path, "sync probe");
        ASSERT_TRUE(os.ok());
        os.stream() << "durable\n";
        EXPECT_TRUE(os.sync());
        // Unflushed-beyond-sync data still lands via finish().
        os.stream() << "tail\n";
        EXPECT_TRUE(os.finish());
    }
    EXPECT_EQ(slurp(path), "durable\ntail\n");
    std::remove(path.c_str());

    // A writer that never opened degrades: sync() is a safe no-op
    // failure, not a crash.
    const std::uint64_t errors_before = ioErrorCount().load();
    CheckedOfstream bad("no_such_dir/sync_probe.txt", "sync probe");
    EXPECT_FALSE(bad.ok());
    EXPECT_FALSE(bad.sync());
    EXPECT_GT(ioErrorCount().load(), errors_before);
}
