/**
 * @file
 * Test-side alias for the shared JSON parser.
 *
 * This used to be a standalone test-only parser; when the serve
 * subsystem needed JSON parsing in production code the implementation
 * moved to util/json_parse.hh (slacksim::json). The jsonlite names
 * are kept so existing artifact-validation tests read unchanged.
 * Malformed input throws slacksim::json::ParseError (a
 * std::runtime_error), which fails the test as before.
 */

#ifndef SLACKSIM_TESTS_JSON_LITE_HH
#define SLACKSIM_TESTS_JSON_LITE_HH

#include "util/json_parse.hh"

namespace jsonlite {

using Value = slacksim::json::Value;
using Parser = slacksim::json::Parser;
using slacksim::json::parse;

} // namespace jsonlite

#endif // SLACKSIM_TESTS_JSON_LITE_HH
