/**
 * @file
 * Job queue and job spec tests: priority/FIFO scheduling, budget
 * admission (a 64-core job waits while two 32-core jobs run),
 * cancellation of queued and running jobs, timeouts, and malformed
 * job-spec rejection with did-you-mean diagnostics.
 */

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/job_queue.hh"
#include "serve/job_spec.hh"
#include "util/json_parse.hh"

using namespace slacksim;
using namespace slacksim::serve;

namespace {

JobSpec
makeSpec(std::uint32_t cores, std::uint32_t priority)
{
    JobSpec spec;
    spec.kernel = "fft";
    spec.cores = cores;
    spec.priority = priority;
    return spec;
}

/** Parse a spec from JSON text; returns success, error via out. */
bool
parseSpec(const std::string &text, JobSpec *spec, std::string *error)
{
    return JobSpec::parse(json::parse(text), spec, error);
}

std::string
parseError(const std::string &text)
{
    JobSpec spec;
    std::string error;
    EXPECT_FALSE(parseSpec(text, &spec, &error)) << text;
    return error;
}

} // namespace

TEST(JobQueueTest, FifoWithinPriority)
{
    JobQueue queue;
    const std::uint64_t a = queue.submit(makeSpec(4, 3));
    const std::uint64_t b = queue.submit(makeSpec(4, 3));
    const std::uint64_t c = queue.submit(makeSpec(4, 3));

    EXPECT_EQ(queue.admitNext(100, 10000)->id, a);
    EXPECT_EQ(queue.admitNext(100, 10000)->id, b);
    EXPECT_EQ(queue.admitNext(100, 10000)->id, c);
    EXPECT_EQ(queue.admitNext(100, 10000), nullptr);
}

TEST(JobQueueTest, HigherPriorityJumpsTheLine)
{
    JobQueue queue;
    queue.submit(makeSpec(4, 3));
    const std::uint64_t urgent = queue.submit(makeSpec(4, 7));
    EXPECT_EQ(queue.admitNext(100, 10000)->id, urgent);
}

TEST(JobQueueTest, BigJobWaitsWhileTwoSmallJobsRun)
{
    // Host-thread budget 66: a 32-core parallel job needs 33 threads
    // (manager + cores), so two of them exactly fill the budget while
    // a 64-core job (65 threads) must wait for both to retire.
    JobQueue queue;
    const std::uint64_t small1 = queue.submit(makeSpec(32, 3));
    const std::uint64_t small2 = queue.submit(makeSpec(32, 3));
    const std::uint64_t big = queue.submit(makeSpec(64, 3));

    std::uint32_t free_threads = 66;
    Job *j1 = queue.admitNext(free_threads, 1u << 20);
    ASSERT_NE(j1, nullptr);
    EXPECT_EQ(j1->id, small1);
    free_threads -= j1->spec.hostThreads();

    Job *j2 = queue.admitNext(free_threads, 1u << 20);
    ASSERT_NE(j2, nullptr);
    EXPECT_EQ(j2->id, small2);
    free_threads -= j2->spec.hostThreads();

    // 0 threads left: the 64-core job cannot start.
    EXPECT_EQ(queue.admitNext(free_threads, 1u << 20), nullptr);

    queue.markFinished(small1, JobState::Done);
    free_threads += j1->spec.hostThreads();
    // 33 free: still not enough for 65.
    EXPECT_EQ(queue.admitNext(free_threads, 1u << 20), nullptr);

    queue.markFinished(small2, JobState::Done);
    free_threads += j2->spec.hostThreads();
    Job *j3 = queue.admitNext(free_threads, 1u << 20);
    ASSERT_NE(j3, nullptr);
    EXPECT_EQ(j3->id, big);
}

TEST(JobQueueTest, SmallJobBackfillsPastBigJob)
{
    JobQueue queue;
    queue.submit(makeSpec(64, 3)); // 65 threads, does not fit
    const std::uint64_t small = queue.submit(makeSpec(8, 3));
    Job *job = queue.admitNext(33, 1u << 20);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->id, small);
}

TEST(JobQueueTest, MemoryBudgetGatesAdmission)
{
    JobQueue queue;
    JobSpec hungry = makeSpec(4, 3);
    hungry.memMb = 4096;
    queue.submit(hungry);
    EXPECT_EQ(queue.admitNext(100, 1024), nullptr);
    EXPECT_NE(queue.admitNext(100, 8192), nullptr);
}

TEST(JobQueueTest, CancelQueuedJobIsImmediatelyTerminal)
{
    JobQueue queue;
    const std::uint64_t id = queue.submit(makeSpec(4, 3));
    std::string error;
    EXPECT_TRUE(queue.requestCancel(id, &error));
    EXPECT_EQ(queue.snapshot(id).front().state, JobState::Cancelled);
    // The scheduler must never admit it.
    EXPECT_EQ(queue.admitNext(100, 10000), nullptr);
    // A second cancel reports the terminal state.
    EXPECT_FALSE(queue.requestCancel(id, &error));
    EXPECT_NE(error.find("cancelled"), std::string::npos);
}

TEST(JobQueueTest, CancelRunningJobFiresItsToken)
{
    JobQueue queue;
    const std::uint64_t id = queue.submit(makeSpec(4, 3));
    Job *job = queue.admitNext(100, 10000);
    ASSERT_NE(job, nullptr);
    EXPECT_FALSE(job->cancel->cancelled());

    std::string error;
    EXPECT_TRUE(queue.requestCancel(id, &error));
    EXPECT_TRUE(job->cancel->cancelled());
    // Still running until the engine hands back its partial result.
    EXPECT_EQ(queue.snapshot(id).front().state, JobState::Running);
    queue.markFinished(id, JobState::Cancelled);
    EXPECT_EQ(queue.snapshot(id).front().state, JobState::Cancelled);
}

TEST(JobQueueTest, DeadlineFiresTokenAndMarksTimeout)
{
    JobQueue queue;
    JobSpec spec = makeSpec(4, 3);
    spec.timeoutMs = 1;
    const std::uint64_t id = queue.submit(spec);
    Job *job = queue.admitNext(100, 10000);
    ASSERT_NE(job, nullptr);

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(queue.checkDeadlines(), 1u);
    EXPECT_TRUE(job->cancel->cancelled());
    // Firing is one-shot.
    EXPECT_EQ(queue.checkDeadlines(), 0u);

    // The engine reports "cancelled"; the queue knows it was the
    // deadline and upgrades the terminal state.
    queue.markFinished(id, JobState::Cancelled);
    EXPECT_EQ(queue.snapshot(id).front().state, JobState::TimedOut);
}

TEST(JobQueueTest, ShutdownHelpersSweepTheQueue)
{
    JobQueue queue;
    queue.submit(makeSpec(4, 3));
    const std::uint64_t running = queue.submit(makeSpec(4, 5));
    Job *job = queue.admitNext(100, 10000);
    ASSERT_EQ(job->id, running);

    queue.cancelQueued();
    queue.cancelRunning();
    EXPECT_TRUE(job->cancel->cancelled());
    queue.markFinished(running, JobState::Cancelled);
    EXPECT_TRUE(queue.idle());

    const QueueStats s = queue.stats();
    EXPECT_EQ(s.submitted, 2u);
    EXPECT_EQ(s.cancelled, 2u);
}

// ---- job-spec validation --------------------------------------------

TEST(JobSpecTest, ParsesFullSpec)
{
    JobSpec spec;
    std::string error;
    ASSERT_TRUE(parseSpec(
        R"({"version": "slacksim.job.v1", "name": "big", "kernel": "lu",
            "cores": 16, "scheme": "quantum", "quantum": 32,
            "seed": 7, "max_uops": 1000, "priority": 6,
            "timeout_ms": 5000, "fault_spec": "io-fail@write:1"})",
        &spec, &error))
        << error;
    EXPECT_EQ(spec.kernel, "lu");
    EXPECT_EQ(spec.cores, 16u);
    EXPECT_EQ(spec.scheme, "quantum");
    EXPECT_EQ(spec.quantum, 32u);
    EXPECT_EQ(spec.priority, 6u);
    EXPECT_EQ(spec.hostThreads(), 17u);

    // The resulting config survives the engine's fatal validator.
    spec.toConfig().validate();
}

TEST(JobSpecTest, UnknownKeyGetsDidYouMean)
{
    const std::string error =
        parseError(R"({"kernal": "fft", "kernel": "fft"})");
    EXPECT_NE(error.find("kernal"), std::string::npos);
    EXPECT_NE(error.find("did you mean 'kernel'"), std::string::npos);
}

TEST(JobSpecTest, UnknownKernelGetsDidYouMean)
{
    const std::string error = parseError(R"({"kernel": "fftt"})");
    EXPECT_NE(error.find("did you mean 'fft'"), std::string::npos);
}

TEST(JobSpecTest, UnknownSchemeGetsDidYouMean)
{
    const std::string error =
        parseError(R"({"kernel": "fft", "scheme": "buonded"})");
    EXPECT_NE(error.find("did you mean 'bounded'"),
              std::string::npos);
}

TEST(JobSpecTest, BadFaultKindGetsDidYouMean)
{
    const std::string error = parseError(
        R"({"kernel": "fft", "fault_spec": "io-fial@write:1"})");
    EXPECT_NE(error.find("did you mean 'io-fail'"),
              std::string::npos);
}

TEST(JobSpecTest, RejectsOutOfRangeValues)
{
    EXPECT_NE(parseError(R"({"kernel": "fft", "cores": 0})")
                  .find("cores"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"kernel": "fft", "cores": 65})")
                  .find("cores"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"kernel": "fft", "priority": 9})")
                  .find("priority"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"kernel": "fft", "cores": -4})")
                  .find("integer"),
              std::string::npos);
    EXPECT_NE(
        parseError(
            R"({"kernel": "fft", "checkpoint": "measure",
                "checkpoint_interval": 10})")
            .find("checkpoint_interval"),
        std::string::npos);
}

TEST(JobSpecTest, RejectsWrongVersionAndShape)
{
    EXPECT_NE(parseError(R"({"kernel": "fft", "version": "v2"})")
                  .find("version"),
              std::string::npos);
    EXPECT_NE(parseError(R"({})").find("kernel"), std::string::npos);

    JobSpec spec;
    std::string error;
    EXPECT_FALSE(JobSpec::parse(json::parse("[1, 2]"), &spec, &error));
    EXPECT_NE(error.find("object"), std::string::npos);
}

TEST(JobSpecTest, MalformedFaultSpecShapeIsRejected)
{
    EXPECT_NE(parseError(
                  R"({"kernel": "fft", "fault_spec": "io-fail"})")
                  .find("expected <kind>@<site>:<trigger>"),
              std::string::npos);
    EXPECT_NE(parseError(R"({"kernel": "fft",
                             "fault_spec": "io-fail@write:x"})")
                  .find("decimal"),
              std::string::npos);
}

TEST(JobSpecTest, RoundTripsThroughJson)
{
    JobSpec spec = makeSpec(12, 5);
    spec.name = "roundtrip";
    spec.scheme = "adaptive";
    spec.faultSpec = "worker-stall@cycle:1000:2";

    JobSpec decoded;
    std::string error;
    ASSERT_TRUE(JobSpec::parse(json::parse(spec.toJson()), &decoded,
                               &error))
        << error;
    EXPECT_EQ(decoded.name, "roundtrip");
    EXPECT_EQ(decoded.cores, 12u);
    EXPECT_EQ(decoded.priority, 5u);
    EXPECT_EQ(decoded.scheme, "adaptive");
    EXPECT_EQ(decoded.faultSpec, spec.faultSpec);
}
