/**
 * @file
 * Tests for the hot-path data structures introduced by the manager
 * overhaul: SpscQueue batch operations (pushN/popN/consumeAll and the
 * cached index mirrors) under single-threaded edge cases and a
 * producer/consumer stress pair, the k-way MergeTree's equivalence to
 * a globally sorted (ts, src, seq) order under the manager's
 * watermark discipline, the ProgressBoard sleep/wake protocol, and
 * the >64-core delivery-wake path through a real engine run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "core/run.hh"
#include "util/core_bitset.hh"
#include "util/merge_tree.hh"
#include "util/progress_board.hh"
#include "util/spsc_queue.hh"

using namespace slacksim;

namespace {

TEST(SpscQueueBatch, PushNRespectsCapacity)
{
    SpscQueue<int> q(8); // rounds up; capacity() reports true limit
    std::vector<int> items(q.capacity() + 5);
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = static_cast<int>(i);

    EXPECT_EQ(q.pushN(items.data(), items.size()), q.capacity());
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.hasFreeSpace(1));
    EXPECT_EQ(q.pushN(items.data(), 1), 0u);

    int out = -1;
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(q.hasFreeSpace(1));
}

TEST(SpscQueueBatch, PopNAndConsumeAllPreserveOrder)
{
    SpscQueue<int> q(64);
    for (int i = 0; i < 40; ++i)
        EXPECT_TRUE(q.push(i));

    int buf[16];
    EXPECT_EQ(q.popN(buf, 16), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(buf[i], i);

    std::vector<int> rest;
    EXPECT_EQ(q.consumeAll([&](const int &v) { rest.push_back(v); }),
              24u);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(rest[i], 16 + i);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.popN(buf, 16), 0u);
}

TEST(SpscQueueBatch, WrapAroundBatches)
{
    SpscQueue<std::uint64_t> q(16);
    std::uint64_t next_in = 0;
    std::uint64_t next_out = 0;
    std::uint64_t buf[11];
    // Many unaligned batch sizes force every wrap position.
    for (int round = 0; round < 1000; ++round) {
        const std::size_t n = round % 11 + 1;
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = next_in + i;
        next_in += q.pushN(buf, n);
        const std::size_t got = q.popN(buf, round % 7 + 1);
        for (std::size_t i = 0; i < got; ++i)
            EXPECT_EQ(buf[i], next_out + i);
        next_out += got;
    }
    while (next_out < next_in) {
        std::uint64_t v = 0;
        ASSERT_TRUE(q.pop(v));
        EXPECT_EQ(v, next_out++);
    }
}

/** Producer/consumer stress: mixed single and batch operations on
 *  both sides must still deliver a perfect FIFO sequence. */
TEST(SpscQueueBatch, FifoUnderProducerConsumerStress)
{
    constexpr std::uint64_t total = 200000;
    SpscQueue<std::uint64_t> q(128);

    std::thread producer([&q] {
        std::mt19937 rng(12345);
        std::uint64_t next = 0;
        std::uint64_t buf[17];
        while (next < total) {
            if (rng() % 3 == 0) {
                if (q.push(next))
                    ++next;
            } else {
                std::size_t n = rng() % 17 + 1;
                n = static_cast<std::size_t>(
                    std::min<std::uint64_t>(n, total - next));
                for (std::size_t i = 0; i < n; ++i)
                    buf[i] = next + i;
                next += q.pushN(buf, n);
            }
        }
    });

    std::mt19937 rng(54321);
    std::uint64_t expect = 0;
    std::uint64_t buf[23];
    while (expect < total) {
        switch (rng() % 3) {
          case 0: {
            std::uint64_t v = 0;
            if (q.pop(v)) {
                ASSERT_EQ(v, expect);
                ++expect;
            }
            break;
          }
          case 1: {
            const std::size_t got = q.popN(buf, rng() % 23 + 1);
            for (std::size_t i = 0; i < got; ++i)
                ASSERT_EQ(buf[i], expect + i);
            expect += got;
            break;
          }
          default:
            q.consumeAll([&](const std::uint64_t &v) {
                ASSERT_EQ(v, expect);
                ++expect;
            });
            break;
        }
    }
    producer.join();
    EXPECT_TRUE(q.empty());
}

/** The manager's event shape, reduced to its ordering key. */
struct Ev
{
    Tick ts;
    std::uint32_t src;
    std::uint64_t seq;
};

struct RunHeadLess
{
    const std::vector<std::deque<Ev>> *runs;

    bool
    operator()(std::uint32_t a, std::uint32_t b) const
    {
        const auto &ra = (*runs)[a];
        const auto &rb = (*runs)[b];
        if (ra.empty())
            return false;
        if (rb.empty())
            return true;
        if (ra.front().ts != rb.front().ts)
            return ra.front().ts < rb.front().ts;
        return a < b;
    }
};

std::vector<std::tuple<Tick, std::uint32_t, std::uint64_t>>
sortedReference(const std::vector<Ev> &all)
{
    std::vector<std::tuple<Tick, std::uint32_t, std::uint64_t>> ref;
    ref.reserve(all.size());
    for (const Ev &e : all)
        ref.emplace_back(e.ts, e.src, e.seq);
    std::sort(ref.begin(), ref.end());
    return ref;
}

/** Drain-everything equivalence: per-source monotone runs merged by
 *  the tree must come out in global (ts, src, seq) order. */
TEST(MergeTree, DrainMatchesGlobalSort)
{
    constexpr std::uint32_t sources = 13; // non-power-of-two padding
    std::mt19937 rng(99);
    std::vector<std::deque<Ev>> runs(sources);
    MergeTree<RunHeadLess> tree(sources, RunHeadLess{&runs});

    std::vector<Ev> all;
    std::vector<Tick> clock(sources, 0);
    std::vector<std::uint64_t> seq(sources, 0);
    for (int i = 0; i < 5000; ++i) {
        const std::uint32_t s = rng() % sources;
        clock[s] += rng() % 3; // frequent cross-source ts collisions
        const Ev e{clock[s], s, seq[s]++};
        all.push_back(e);
        const bool was_empty = runs[s].empty();
        runs[s].push_back(e);
        if (was_empty)
            tree.update(s);
    }

    std::vector<std::tuple<Tick, std::uint32_t, std::uint64_t>> merged;
    std::size_t staged = all.size();
    while (staged) {
        const std::uint32_t w = tree.winner();
        ASSERT_NE(w, MergeTree<RunHeadLess>::none);
        const Ev e = runs[w].front();
        runs[w].pop_front();
        --staged;
        tree.update(w);
        merged.emplace_back(e.ts, e.src, e.seq);
    }
    EXPECT_EQ(merged, sortedReference(all));
}

/** Incremental equivalence under the engine's watermark discipline:
 *  interleave pushes with partial drains bounded by the min source
 *  clock — exactly the serviceSorted(safe) contract. */
TEST(MergeTree, WatermarkedServiceMatchesGlobalSort)
{
    constexpr std::uint32_t sources = 6;
    std::mt19937 rng(7);
    std::vector<std::deque<Ev>> runs(sources);
    MergeTree<RunHeadLess> tree(sources, RunHeadLess{&runs});

    std::vector<Ev> all;
    std::vector<Tick> clock(sources, 0);
    std::vector<std::uint64_t> seq(sources, 0);
    std::vector<std::tuple<Tick, std::uint32_t, std::uint64_t>> merged;
    std::size_t staged = 0;

    for (int round = 0; round < 400; ++round) {
        // Each source advances its clock and emits 0..3 events at it.
        for (std::uint32_t s = 0; s < sources; ++s) {
            clock[s] += rng() % 5;
            const std::uint32_t emit = rng() % 4;
            for (std::uint32_t i = 0; i < emit; ++i) {
                const Ev e{clock[s], s, seq[s]++};
                all.push_back(e);
                const bool was_empty = runs[s].empty();
                runs[s].push_back(e);
                ++staged;
                if (was_empty)
                    tree.update(s);
            }
        }
        // Safe time = min clock: everything below it is staged.
        const Tick safe = *std::min_element(clock.begin(), clock.end());
        while (staged) {
            const std::uint32_t w = tree.winner();
            if (runs[w].front().ts >= safe)
                break;
            const Ev e = runs[w].front();
            runs[w].pop_front();
            --staged;
            tree.update(w);
            merged.emplace_back(e.ts, e.src, e.seq);
        }
    }
    while (staged) {
        const std::uint32_t w = tree.winner();
        const Ev e = runs[w].front();
        runs[w].pop_front();
        --staged;
        tree.update(w);
        merged.emplace_back(e.ts, e.src, e.seq);
    }
    EXPECT_EQ(merged, sortedReference(all));
}

/**
 * The banked manager's two-level selection (per-bank k-way tree, top-
 * level scan over bank heads on the full (ts, src, seq) key) must
 * reproduce the exact global sort for every bank count, even though a
 * single source's events scatter across banks by address — the seq
 * tie-break is what keeps two banks holding the same source at the
 * same timestamp in original emission order.
 */
TEST(MergeTree, BankedSelectionMatchesGlobalSort)
{
    constexpr std::uint32_t sources = 5;
    struct AddrEv
    {
        Ev ev;
        std::uint64_t addr;
    };

    // One fixed event stream, reused for every bank count below.
    std::mt19937 rng(41);
    std::vector<AddrEv> all;
    std::vector<Tick> clock(sources, 0);
    std::vector<std::uint64_t> seq(sources, 0);
    for (int i = 0; i < 4000; ++i) {
        const std::uint32_t s = rng() % sources;
        clock[s] += rng() % 3; // frequent ts collisions
        all.push_back({{clock[s], s, seq[s]++},
                       (static_cast<std::uint64_t>(rng()) % 97) * 64});
    }
    std::vector<Ev> keys;
    for (const AddrEv &e : all)
        keys.push_back(e.ev);
    const auto ref = sortedReference(keys);

    for (const std::uint32_t bank_count : {1u, 2u, 3u, 8u}) {
        SCOPED_TRACE(bank_count);
        std::vector<MergeTree<RunHeadLess>> trees;
        std::vector<std::vector<std::deque<Ev>>> bank_runs(bank_count);
        for (std::uint32_t b = 0; b < bank_count; ++b) {
            bank_runs[b].resize(sources);
            trees.emplace_back(sources, RunHeadLess{&bank_runs[b]});
        }
        std::vector<std::size_t> bank_staged(bank_count, 0);
        for (const AddrEv &e : all) {
            const std::uint32_t b =
                static_cast<std::uint32_t>((e.addr >> 6) % bank_count);
            const bool was_empty = bank_runs[b][e.ev.src].empty();
            bank_runs[b][e.ev.src].push_back(e.ev);
            ++bank_staged[b];
            if (was_empty)
                trees[b].update(e.ev.src);
        }

        std::vector<std::tuple<Tick, std::uint32_t, std::uint64_t>>
            merged;
        for (;;) {
            std::uint32_t win_bank = bank_count;
            const Ev *win = nullptr;
            for (std::uint32_t b = 0; b < bank_count; ++b) {
                if (bank_staged[b] == 0)
                    continue;
                const Ev &head =
                    bank_runs[b][trees[b].winner()].front();
                if (!win || head.ts < win->ts ||
                    (head.ts == win->ts &&
                     (head.src < win->src ||
                      (head.src == win->src && head.seq < win->seq)))) {
                    win = &head;
                    win_bank = b;
                }
            }
            if (!win)
                break;
            merged.emplace_back(win->ts, win->src, win->seq);
            const std::uint32_t s = win->src;
            bank_runs[win_bank][s].pop_front();
            --bank_staged[win_bank];
            trees[win_bank].update(s);
        }
        EXPECT_EQ(merged, ref);
    }
}

/** The Dekker sleep/wake protocol must not lose the final wakeup. */
TEST(ProgressBoard, SleepWakesOnBump)
{
    constexpr std::uint64_t bumps = 20000;
    ProgressBoard board(2);
    std::atomic<bool> done{false};

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < bumps; ++i)
            board.bump(0);
        done.store(true, std::memory_order_release);
        board.bump(1);
    });

    // Consumer: sleep whenever the sum is unchanged; must always be
    // woken again and observe the final total.
    std::uint64_t seen = 0;
    while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t s = board.sum();
        if (s == seen) {
            board.sleep(s, [&] {
                return !done.load(std::memory_order_acquire);
            });
        }
        seen = board.sum();
    }
    producer.join();
    EXPECT_EQ(board.sum(), bumps + 1);
}

/**
 * The manager's delivery-wake set was a single `1ull << dst` mask
 * that silently wrapped for dst >= 64; the replacement CoreBitset
 * must track indices across word boundaries exactly. (Whole-system
 * core counts are separately capped at 64 by config validation
 * because the uncore's sharer masks are one 64-bit word — this
 * utility is the part that no longer depends on that cap.)
 */
TEST(CoreBitset, TracksBitsBeyond64)
{
    CoreBitset set(200);
    EXPECT_FALSE(set.any());

    const std::vector<std::uint32_t> bits{0, 3, 63, 64, 65, 127,
                                          128, 199};
    for (const std::uint32_t b : bits)
        set.set(b);
    // Idempotent re-set of an already-set bit.
    set.set(64);
    EXPECT_TRUE(set.any());

    std::vector<std::uint32_t> drained;
    set.drain([&](std::uint32_t b) { drained.push_back(b); });
    EXPECT_EQ(drained, bits); // ascending, no duplicates, no wraps
    EXPECT_FALSE(set.any());

    // Drain cleared everything: a second drain sees nothing.
    set.drain([&](std::uint32_t) { FAIL() << "set not cleared"; });

    // Reusable after clearing.
    set.set(130);
    drained.clear();
    set.drain([&](std::uint32_t b) { drained.push_back(b); });
    EXPECT_EQ(drained, (std::vector<std::uint32_t>{130}));
}

/**
 * End-to-end delivery wakeups at the full supported width: with 64
 * cores the highest delivery target exercises bit 63, and unbounded
 * (free-running) cores park until the manager's delivery wake — a
 * missed wake is a watchdog panic, not a silent slowdown.
 */
TEST(ManyCore, DeliveryWakeupsAtFullWidth)
{
    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 64;
    config.workload.numThreads = 64;
    config.workload.iters = 40;
    config.workload.footprintBytes = 256 * 1024;
    config.engine.scheme = SchemeKind::Unbounded;
    config.engine.parallelHost = true;
    config.engine.watchdogSeconds = 120;

    const RunResult r = runSimulation(config);
    ASSERT_EQ(r.perCore.size(), 64u);
    for (std::size_t c = 0; c < r.perCore.size(); ++c)
        EXPECT_GT(r.perCore[c].committedInstrs, 0u) << "core " << c;
}

} // namespace
