/**
 * @file
 * WorkerPool unit tests: thread reuse, claim accounting, overflow
 * fallback, and the join-then-relaunch guarantee admission control
 * depends on.
 */

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "serve/job_spec.hh"
#include "serve/supervisor.hh"
#include "serve/worker_pool.hh"
#include "util/json_parse.hh"

using slacksim::TaskRunner;
using slacksim::serve::WorkerPool;

namespace {

/** Gate that holds tasks in-flight until released. */
struct Gate
{
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            open = true;
        }
        cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return open; });
    }
};

} // namespace

TEST(WorkerPoolTest, ReusesThreadsAcrossManyTasks)
{
    WorkerPool pool(4);
    std::atomic<int> ran{0};

    // 10 waves of up-to-pool-size tasks: 40 tasks, 4 threads, ever.
    for (int wave = 0; wave < 10; ++wave) {
        std::vector<std::unique_ptr<TaskRunner::Handle>> handles;
        for (int i = 0; i < 4; ++i) {
            handles.push_back(pool.launch(
                [&ran] { ran.fetch_add(1); }));
        }
        for (auto &h : handles)
            h->join();
    }

    EXPECT_EQ(ran.load(), 40);
    EXPECT_EQ(pool.tasksRun(), 40u);
    // The reuse proof: no thread was created beyond the initial pool.
    EXPECT_EQ(pool.threadsSpawned(), 4u);
    EXPECT_EQ(pool.overflowSpawns(), 0u);
    EXPECT_EQ(pool.freeThreads(), 4u);
}

TEST(WorkerPoolTest, LaunchClaimsSlotImmediately)
{
    WorkerPool pool(2);
    Gate gate;
    auto h1 = pool.launch([&gate] { gate.wait(); });
    auto h2 = pool.launch([&gate] { gate.wait(); });
    // Both slots claimed even if the workers have not dequeued yet.
    EXPECT_EQ(pool.freeThreads(), 0u);
    gate.release();
    h1->join();
    h2->join();
    EXPECT_EQ(pool.freeThreads(), 2u);
}

TEST(WorkerPoolTest, OverflowSpawnsFreshThreadWhenPoolExhausted)
{
    WorkerPool pool(2);
    Gate gate;
    auto h1 = pool.launch([&gate] { gate.wait(); });
    auto h2 = pool.launch([&gate] { gate.wait(); });

    // Third task has no free pool thread: must still run (overflow).
    std::atomic<bool> third_ran{false};
    auto h3 = pool.launch([&third_ran] { third_ran.store(true); });
    h3->join();
    EXPECT_TRUE(third_ran.load());
    EXPECT_EQ(pool.overflowSpawns(), 1u);
    EXPECT_EQ(pool.threadsSpawned(), 3u);

    gate.release();
    h1->join();
    h2->join();
}

TEST(WorkerPoolTest, JoinGuaranteesSlotIsReclaimable)
{
    // Regression: join() must not return before the worker re-registers
    // as free, or a joiner that immediately launches (the scheduler's
    // reap-then-admit cycle) would hit the overflow path despite
    // perfect budget accounting.
    WorkerPool pool(1);
    for (int i = 0; i < 200; ++i) {
        auto h = pool.launch([] {});
        h->join();
    }
    EXPECT_EQ(pool.tasksRun(), 200u);
    EXPECT_EQ(pool.overflowSpawns(), 0u);
    EXPECT_EQ(pool.threadsSpawned(), 1u);
}

TEST(WorkerPoolTest, ClaimSurvivesCrashingIsolatedChild)
{
    // Claim accounting when the work itself dies: a pool task hosting
    // a supervised child whose simulation segfaults. The crash is the
    // CHILD's — the pool thread must come back, re-register as free,
    // and never force later launches onto the overflow path.
    using namespace slacksim;
    using namespace slacksim::serve;

    JobSpec spec;
    std::string error;
    ASSERT_TRUE(JobSpec::parse(
        json::parse(R"({"kernel": "fft", "cores": 2,
            "scheme": "quantum", "quantum": 16, "max_uops": 40000,
            "parallel_host": false, "isolation": "process",
            "fault_spec": "job-crash@cycle:500"})"),
        &spec, &error))
        << error;
    const SimConfig config = spec.toConfig();

    WorkerPool pool(2);
    for (int round = 0; round < 3; ++round) {
        SupervisedResult result;
        auto h = pool.launch([&config, &result] {
            result = runIsolatedJob(config, IsolationLimits{},
                                    nullptr, nullptr);
        });
        h->join();
        EXPECT_EQ(result.status, SupervisedResult::Status::Crashed);
        EXPECT_EQ(pool.freeThreads(), 2u) << "round " << round;
    }
    EXPECT_EQ(pool.overflowSpawns(), 0u);
    EXPECT_EQ(pool.threadsSpawned(), 2u);
    EXPECT_EQ(pool.tasksRun(), 3u);
}
