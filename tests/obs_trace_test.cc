/**
 * @file
 * Event tracer tests: ring wraparound and overflow accounting, span
 * begin/end pairing through the registry, deterministic multi-thread
 * merge order, and a golden test that a traced engine run emits a
 * parseable Chrome-trace JSON containing the expected span names.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/run.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace_buffer.hh"
#include "obs/tracer.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"

using namespace slacksim;
using namespace slacksim::obs;

namespace {

TraceRecord
record(Tick cycle, const char *name = "ev",
       TraceType type = TraceType::Instant)
{
    TraceRecord r;
    r.wallNs = cycle;
    r.cycle = cycle;
    r.name = name;
    r.arg = 0;
    r.arg2 = 0;
    r.type = type;
    r.category = TraceCategory::Core;
    return r;
}

/**
 * Minimal JSON validity checker, enough for the golden test: parses
 * the full value grammar (objects, arrays, strings with escapes,
 * numbers, literals) and requires every byte to be consumed.
 */
class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *lit)
    {
        const std::string l(lit);
        if (s_.compare(pos_, l.size(), l) != 0)
            return false;
        pos_ += l.size();
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Run @p config with the trace sink at a temp path, slurp the file
 *  back as parsed JSON, and delete it. */
json::Value
traceFromRun(SimConfig config, const std::string &stem,
             RunResult *result = nullptr)
{
    setQuietLogging(true);
    const std::string path = testing::TempDir() + stem + ".json";
    config.engine.obs.traceOut = path;
    const RunResult r = runSimulation(config);
    if (result)
        *result = r;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "trace file missing: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(path.c_str());
    return json::parse(buffer.str());
}

/**
 * Walk every duration event and require begin/end discipline per
 * (tid, name): running depth never goes negative and ends balanced —
 * a rewound epoch must close its spans, never leak them. @return the
 * per-name event counts ("B ph" for spans, all phs for the rest) so
 * callers can assert on the episode markers they expect.
 */
std::map<std::string, int>
checkSpanDiscipline(const json::Value &doc)
{
    std::map<std::string, int> names;
    std::map<std::pair<long long, std::string>, int> depth;
    EXPECT_TRUE(doc.has("traceEvents"));
    for (const auto &ev : doc.at("traceEvents").array) {
        const std::string ph = ev.at("ph").asString();
        const std::string name = ev.at("name").asString();
        if (ph == "B" || ph == "i")
            ++names[name];
        if (ph != "B" && ph != "E")
            continue;
        const auto key = std::make_pair(
            static_cast<long long>(ev.at("tid").asNumber()), name);
        depth[key] += ph == "B" ? 1 : -1;
        EXPECT_GE(depth[key], 0)
            << "span '" << name << "' ended before it began on tid "
            << key.first;
    }
    for (const auto &[key, d] : depth) {
        EXPECT_EQ(d, 0) << "span '" << key.second
                        << "' leaked open on tid " << key.first;
    }
    return names;
}

/** Serial speculative baseline that checkpoints every 1000 cycles
 *  (mirrors fault_injection_test's specConfig). */
SimConfig
rollbackConfig()
{
    SimConfig config;
    config.workload.kernel = "falseshare";
    config.workload.numThreads = config.target.numCores;
    config.workload.iters = 2000;
    config.workload.footprintBytes = 64 * 1024;
    config.engine.parallelHost = false;
    config.engine.scheme = SchemeKind::Adaptive;
    config.engine.adaptive.targetViolationRate = 0.05;
    config.engine.adaptive.initialBound = 64;
    config.engine.checkpoint.mode = CheckpointMode::Speculative;
    config.engine.checkpoint.interval = 1000;
    return config;
}

} // namespace

TEST(TraceRing, FifoDrainAndCapacity)
{
    TraceRing ring(8);
    EXPECT_GE(ring.capacity(), 8u);
    for (Tick t = 0; t < 5; ++t)
        ring.push(record(t));
    std::vector<TraceRecord> out;
    EXPECT_EQ(ring.drain(out), 5u);
    ASSERT_EQ(out.size(), 5u);
    for (Tick t = 0; t < 5; ++t)
        EXPECT_EQ(out[t].cycle, t);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WraparoundAcrossManyDrains)
{
    TraceRing ring(4);
    std::vector<TraceRecord> out;
    Tick next = 0;
    // Push/drain far past the physical size: indices must wrap
    // without losing order or records.
    for (int round = 0; round < 100; ++round) {
        ring.push(record(next));
        ring.push(record(next + 1));
        out.clear();
        ASSERT_EQ(ring.drain(out), 2u);
        EXPECT_EQ(out[0].cycle, next);
        EXPECT_EQ(out[1].cycle, next + 1);
        next += 2;
    }
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, OverflowDropsNewestAndCounts)
{
    TraceRing ring(4);
    const std::size_t cap = ring.capacity();
    for (Tick t = 0; t < static_cast<Tick>(cap) + 10; ++t)
        ring.push(record(t));
    EXPECT_EQ(ring.dropped(), 10u);
    std::vector<TraceRecord> out;
    EXPECT_EQ(ring.drain(out), cap);
    // Drop-new policy: the oldest records survive, the overflow is
    // the tail that never entered.
    for (std::size_t i = 0; i < cap; ++i)
        EXPECT_EQ(out[i].cycle, static_cast<Tick>(i));
    // After draining there is room again.
    ring.push(record(999));
    out.clear();
    EXPECT_EQ(ring.drain(out), 1u);
    EXPECT_EQ(out[0].cycle, 999u);
}

TEST(Tracer, SpanBeginEndPairing)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_TRUE(tracer.activate(64));
    tracer.registerThread("pairing");
    traceBegin(TraceCategory::Engine, "outer", 10);
    traceBegin(TraceCategory::Core, "inner", 11);
    traceEnd(TraceCategory::Core, "inner", 12);
    traceEnd(TraceCategory::Engine, "outer", 13);
    auto traces = tracer.takeTraces();
    tracer.unregisterThread();
    tracer.deactivate();

    ASSERT_EQ(traces.size(), 1u);
    const auto &records = traces[0].records;
    ASSERT_EQ(records.size(), 4u);
    // Properly nested begin/end pairs in emission order.
    EXPECT_EQ(records[0].type, TraceType::Begin);
    EXPECT_STREQ(records[0].name, "outer");
    EXPECT_EQ(records[1].type, TraceType::Begin);
    EXPECT_STREQ(records[1].name, "inner");
    EXPECT_EQ(records[2].type, TraceType::End);
    EXPECT_STREQ(records[2].name, "inner");
    EXPECT_EQ(records[3].type, TraceType::End);
    EXPECT_STREQ(records[3].name, "outer");
    EXPECT_EQ(traces[0].dropped, 0u);
}

TEST(Tracer, EmitWithoutSessionIsNoOp)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_FALSE(tracer.active());
    traceInstant(TraceCategory::Bus, "ignored", 1);
    ASSERT_TRUE(tracer.activate(64));
    // Emission before registration is also dropped silently.
    traceInstant(TraceCategory::Bus, "ignored", 2);
    auto traces = tracer.takeTraces();
    tracer.deactivate();
    EXPECT_TRUE(traces.empty());
}

TEST(Tracer, OnlyOneSessionAtATime)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_TRUE(tracer.activate(64));
    EXPECT_FALSE(tracer.activate(64));
    tracer.deactivate();
    EXPECT_TRUE(tracer.activate(64));
    tracer.deactivate();
}

TEST(Tracer, MergeByCycleOrdersAcrossThreads)
{
    Tracer &tracer = Tracer::instance();
    ASSERT_TRUE(tracer.activate(256));

    // Three producer threads, interleaved simulated cycles.
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
        workers.emplace_back([t, &tracer] {
            tracer.registerThread("worker " + std::to_string(t));
            for (Tick c = 0; c < 50; ++c) {
                traceInstant(TraceCategory::Core, "tick",
                             c * 3 + static_cast<Tick>(t),
                             static_cast<std::int64_t>(t));
            }
            tracer.unregisterThread();
        });
    }
    for (auto &w : workers)
        w.join();

    auto traces = tracer.takeTraces();
    tracer.deactivate();
    ASSERT_EQ(traces.size(), 3u);

    const auto merged = mergeByCycle(traces);
    ASSERT_EQ(merged.size(), 150u);
    for (std::size_t i = 1; i < merged.size(); ++i) {
        const auto &prev = merged[i - 1];
        const auto &cur = merged[i];
        const bool ordered =
            prev.second.cycle < cur.second.cycle ||
            (prev.second.cycle == cur.second.cycle &&
             prev.first <= cur.first);
        EXPECT_TRUE(ordered) << "disorder at " << i;
    }
    // With cycle = 3*c + tid the merged stream is exactly 0,1,2,3...
    for (std::size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(merged[i].second.cycle, static_cast<Tick>(i));
}

TEST(ChromeTrace, GoldenSpansFromTinyEngineRun)
{
    setQuietLogging(true);
    const std::string path =
        testing::TempDir() + "obs_trace_golden.json";

    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 4;
    config.workload.numThreads = 4;
    config.workload.iters = 800;
    config.workload.footprintBytes = 32 * 1024;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.slackBound = 8;
    config.engine.maxCommittedUops = 6000;
    config.engine.parallelHost = true;
    // Pin the host topology: the golden needles below assert on the
    // worker thread names, which the auto policy would elide on a
    // single-CPU host (inline mode).
    config.engine.hostThreads = 3;
    config.engine.checkpoint.mode = CheckpointMode::Measure;
    config.engine.checkpoint.interval = 1000;
    config.engine.obs.traceOut = path;
    runSimulation(config);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "trace file missing: " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    ASSERT_FALSE(json.empty());

    MiniJson parser(json);
    EXPECT_TRUE(parser.valid()) << "trace JSON does not parse";

    for (const char *needle :
         {"\"traceEvents\"", "\"core-run\"", "\"manager-service\"",
          "\"checkpoint\"", "\"engine-run\"", "\"thread_name\"",
          "\"manager\"", "\"worker 0\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
    // The rings were sized by the default 1 MiB budget; a tiny run
    // must never overflow them.
    EXPECT_EQ(json.find("trace-overflow"), std::string::npos);

    std::remove(path.c_str());
}

TEST(ChromeTrace, WriterEscapesAndOrdersRecords)
{
    std::vector<ThreadTrace> traces(1);
    traces[0].role = "core \"0\"\\";
    traces[0].tid = 0;
    // Deliberately out of wall order: the writer sorts by wallNs.
    TraceRecord late = record(7, "late", TraceType::Instant);
    late.wallNs = 2000;
    TraceRecord early = record(3, "early", TraceType::Instant);
    early.wallNs = 1000;
    traces[0].records = {late, early};

    std::ostringstream os;
    writeChromeTrace(os, traces);
    const std::string json = os.str();

    MiniJson parser(json);
    EXPECT_TRUE(parser.valid()) << json;
    EXPECT_NE(json.find("core \\\"0\\\"\\\\"), std::string::npos);
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(TraceRollback, SerialReplaySpansClosedAndAttributed)
{
    // A spurious rollback rewinds the serial engine one interval; the
    // exported trace must attribute the episode (rollback span,
    // violation-rollback instant, replay window) and close every span
    // it opened in the rewound epoch.
    SimConfig config = rollbackConfig();
    config.engine.faultSpecs = {"spurious-rollback@ckpt:2"};
    RunResult r;
    const json::Value doc =
        traceFromRun(config, "obs_trace_rb_serial", &r);
    EXPECT_GT(r.host.rollbacks, 0u);

    const auto names = checkSpanDiscipline(doc);
    EXPECT_GT(names.count("rollback"), 0u);
    EXPECT_GT(names.count("replay"), 0u);
    EXPECT_GT(names.count("violation-rollback"), 0u);
    // One replay window per successful in-memory restore.
    EXPECT_EQ(names.at("replay"),
              static_cast<int>(r.host.rollbacks));
}

TEST(TraceRollback, ParallelBankedReplaySpansClosed)
{
    // Same episode on the threaded engine with sharded manager banks:
    // worker tracks and the banked manager must still export balanced
    // spans across the rewind.
    SimConfig config = rollbackConfig();
    config.engine.parallelHost = true;
    config.engine.hostThreads = 3;
    config.engine.managerBanks = 2;
    config.engine.faultSpecs = {"spurious-rollback@ckpt:2"};
    RunResult r;
    const json::Value doc =
        traceFromRun(config, "obs_trace_rb_parallel", &r);
    EXPECT_GT(r.host.rollbacks, 0u);

    const auto names = checkSpanDiscipline(doc);
    EXPECT_GT(names.count("rollback"), 0u);
    EXPECT_GT(names.count("replay"), 0u);
    EXPECT_GT(names.count("violation-rollback"), 0u);
}

TEST(TraceRollback, DegradationLadderMarkedWithoutLeaks)
{
    // Corrupt the only checkpoint generation, then force a rollback
    // into it: the restore demotes down the degradation ladder
    // instead of replaying. The trace must carry the degradation
    // instant and stay leak-free even though no replay window opened.
    SimConfig config = rollbackConfig();
    config.engine.faultSpecs = {
        "snapshot-corrupt@ckpt:1,spurious-rollback@ckpt:1"};
    RunResult r;
    const json::Value doc =
        traceFromRun(config, "obs_trace_rb_demote", &r);

    const auto names = checkSpanDiscipline(doc);
    EXPECT_GT(names.count("degradation"), 0u);
}

TEST(TraceSpanIdentity, MetadataCarriesTraceAndClockAnchor)
{
    // When a distributed-trace identity rides in on the config (the
    // daemon's submit path), the engine trace must export it with a
    // clock anchor so the fleet merger can place this process on the
    // shared wall-clock axis.
    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 2;
    config.workload.numThreads = 2;
    config.workload.iters = 200;
    config.workload.footprintBytes = 16 * 1024;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.maxCommittedUops = 2000;
    config.engine.parallelHost = false;
    config.engine.obs.traceId = "00000000deadbeef";
    config.engine.obs.parentSpanId = 0x1234u;
    const json::Value doc =
        traceFromRun(config, "obs_trace_identity");

    ASSERT_TRUE(doc.has("metadata"));
    const json::Value &meta = doc.at("metadata");
    EXPECT_EQ(meta.at("trace_id").asString(), "00000000deadbeef");
    EXPECT_EQ(meta.at("parent_span_id").asString(),
              "0000000000001234");
    // The session minted its own span under that parent.
    const std::string span = meta.at("span_id").asString();
    EXPECT_EQ(span.size(), 16u);
    EXPECT_NE(span, "0000000000000000");
    EXPECT_GT(meta.at("pid").asNumber(), 0.0);
    const json::Value &anchor = meta.at("clock_anchor");
    EXPECT_GT(anchor.at("wall_us").asNumber(), 0.0);
    EXPECT_GT(anchor.at("steady_ns").asNumber(), 0.0);
}

TEST(TraceSpanIdentity, StandaloneRunMintsItsOwnTraceId)
{
    // No identity supplied: runSimulation() mints a fresh trace id so
    // a standalone run is still joinable by id after the fact.
    SimConfig config;
    config.workload.kernel = "uniform";
    config.target.numCores = 2;
    config.workload.numThreads = 2;
    config.workload.iters = 200;
    config.workload.footprintBytes = 16 * 1024;
    config.engine.scheme = SchemeKind::Bounded;
    config.engine.maxCommittedUops = 2000;
    config.engine.parallelHost = false;
    const json::Value doc =
        traceFromRun(config, "obs_trace_minted");

    ASSERT_TRUE(doc.has("metadata"));
    const std::string id =
        doc.at("metadata").at("trace_id").asString();
    EXPECT_EQ(id.size(), 16u);
    for (const char c : id)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)))
            << id;
}
