/**
 * @file
 * Tests for the manager-side uncore: L2 tags, global cache map, sync
 * arbiter, and the full service paths including violation detection
 * and bus timing.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/mesi.hh"
#include "uncore/uncore.hh"
#include "util/rng.hh"

using namespace slacksim;

namespace {

UncoreParams
smallUncore(std::uint32_t cores = 4)
{
    UncoreParams p;
    p.numCores = cores;
    p.l2.totalKb = 16; // 256 lines: evictions easy to trigger
    p.l2.ways = 4;
    p.l2.banks = 2;
    p.l2.hitLatency = 8;
    p.l2.missLatency = 100;
    p.c2cLatency = 12;
    p.syncLatency = 6;
    p.numLocks = 4;
    p.numBarriers = 2;
    return p;
}

BusMsg
req(MsgType type, CoreId src, Addr addr, Tick ts,
    CacheKind cache = CacheKind::Data)
{
    BusMsg m;
    m.type = type;
    m.src = src;
    m.addr = addr;
    m.ts = ts;
    m.cache = cache;
    if (isSyncRequest(type))
        m.sync = static_cast<std::uint16_t>(addr); // addr = lock id
    static SeqNum seq = 0;
    m.seq = seq++;
    return m;
}

/** Find the first outbound message of a given type. */
const Outbound *
findMsg(const std::vector<Outbound> &out, MsgType type)
{
    for (const auto &o : out)
        if (o.msg.type == type)
            return &o;
    return nullptr;
}

struct UncoreFixture : ::testing::Test
{
    UncoreStats stats;
    ViolationStats violations;
    UncoreParams params = smallUncore();
    Uncore uncore{params, &stats, &violations};
    std::vector<Outbound> out;
};

} // namespace

TEST_F(UncoreFixture, ColdGetSMissesL2AndGrantsExclusive)
{
    const auto r = uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    EXPECT_FALSE(r.any());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dst, 0u);
    EXPECT_EQ(out[0].msg.type, MsgType::Fill);
    EXPECT_EQ(static_cast<MesiState>(out[0].msg.grantState),
              MesiState::Exclusive);
    // Timing: grant at 11, L2 miss -> ready at 111, response +2.
    EXPECT_EQ(out[0].msg.ts, 113u);
    EXPECT_EQ(stats.l2Misses, 1u);
    EXPECT_EQ(stats.busRequests, 1u);
}

TEST_F(UncoreFixture, SecondGetSHitsL2AndGrantsShared)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    out.clear();
    uncore.service(req(MsgType::GetS, 1, 0x1000, 200), out);
    ASSERT_EQ(out.size(), 2u); // downgrade to owner (E) + fill
    const Outbound *down = findMsg(out, MsgType::SnoopDown);
    ASSERT_NE(down, nullptr); // exclusive owner gets downgraded
    EXPECT_EQ(down->dst, 0u);
    const Outbound *fill = findMsg(out, MsgType::Fill);
    ASSERT_NE(fill, nullptr);
    EXPECT_EQ(static_cast<MesiState>(fill->msg.grantState),
              MesiState::Shared);
    EXPECT_EQ(stats.cacheToCacheTransfers, 1u);
}

TEST_F(UncoreFixture, GetMInvalidatesAllSharers)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    uncore.service(req(MsgType::GetS, 1, 0x1000, 20), out);
    uncore.service(req(MsgType::GetS, 2, 0x1000, 30), out);
    out.clear();
    uncore.service(req(MsgType::GetM, 3, 0x1000, 40), out);
    int invs = 0;
    for (const auto &o : out)
        if (o.msg.type == MsgType::SnoopInv) {
            ++invs;
            EXPECT_NE(o.dst, 3u);
        }
    EXPECT_EQ(invs, 3);
    const MapEntry *e = uncore.map().find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->owner, 3u);
    EXPECT_EQ(e->dSharers, 1ull << 3);
    uncore.map().checkInvariants();
}

TEST_F(UncoreFixture, GetSFromModifiedOwnerGoesCacheToCache)
{
    uncore.service(req(MsgType::GetM, 0, 0x1000, 10), out);
    out.clear();
    uncore.service(req(MsgType::GetS, 1, 0x1000, 50), out);
    const Outbound *down = findMsg(out, MsgType::SnoopDown);
    ASSERT_NE(down, nullptr);
    EXPECT_EQ(down->dst, 0u);
    const Outbound *fill = findMsg(out, MsgType::Fill);
    ASSERT_NE(fill, nullptr);
    // c2c latency 12: grant at 51 -> data at 63, but the response bus
    // is occupied until 113 by the setup GetM's memory fill, so the
    // transfer starts at 113 and lands at 115.
    EXPECT_EQ(fill->msg.ts, 115u);
    const MapEntry *e = uncore.map().find(0x1000);
    EXPECT_EQ(e->owner, invalidCore);
    EXPECT_EQ(e->dSharers, 0b11u);
}

TEST_F(UncoreFixture, UpgradeAcksAndInvalidatesOthers)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    uncore.service(req(MsgType::GetS, 1, 0x1000, 20), out);
    out.clear();
    uncore.service(req(MsgType::Upgrade, 0, 0x1000, 30), out);
    ASSERT_NE(findMsg(out, MsgType::UpgradeAck), nullptr);
    const Outbound *inv = findMsg(out, MsgType::SnoopInv);
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->dst, 1u);
    const MapEntry *e = uncore.map().find(0x1000);
    EXPECT_EQ(e->owner, 0u);
}

TEST_F(UncoreFixture, PutMClearsOwnershipAndDirtiesL2)
{
    uncore.service(req(MsgType::GetM, 0, 0x1000, 10), out);
    out.clear();
    uncore.service(req(MsgType::PutM, 0, 0x1000, 90), out);
    EXPECT_TRUE(out.empty()); // no response to a writeback
    const MapEntry *e = uncore.map().find(0x1000);
    EXPECT_EQ(e->owner, invalidCore);
    EXPECT_EQ(e->dSharers, 0u);
}

TEST_F(UncoreFixture, BusViolationDetectedOnTimestampInversion)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 100), out);
    EXPECT_EQ(violations.busViolations, 0u);
    const auto r = uncore.service(req(MsgType::GetS, 1, 0x2000, 50), out);
    EXPECT_TRUE(r.busViolation);
    EXPECT_EQ(violations.busViolations, 1u);
    // Monotone timestamps never violate.
    uncore.service(req(MsgType::GetS, 2, 0x3000, 100), out);
    EXPECT_EQ(violations.busViolations, 1u);
}

TEST_F(UncoreFixture, MapViolationIsPerLine)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 100), out);
    // Different line, older timestamp: bus violation but NOT a map
    // violation (that line's monitor is fresh).
    auto r = uncore.service(req(MsgType::GetS, 1, 0x2000, 50), out);
    EXPECT_TRUE(r.busViolation);
    EXPECT_FALSE(r.mapViolation);
    // Same line as the first, older timestamp: map violation.
    r = uncore.service(req(MsgType::GetM, 2, 0x1000, 60), out);
    EXPECT_TRUE(r.mapViolation);
    EXPECT_EQ(violations.mapViolations, 1u);
}

TEST_F(UncoreFixture, ViolationCountingCanBeSuspended)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 100), out);
    uncore.setViolationCounting(false);
    const auto r =
        uncore.service(req(MsgType::GetS, 1, 0x1000, 50), out);
    EXPECT_TRUE(r.busViolation); // still detected...
    EXPECT_EQ(violations.total(), 0u); // ...but not counted
    uncore.setViolationCounting(true);
}

TEST_F(UncoreFixture, RequestBusSerializesGrants)
{
    // Two requests with the same timestamp: the second is delayed by
    // the request bus occupancy and its response by the response bus.
    uncore.service(req(MsgType::GetS, 0, 0x10000, 10), out);
    out.clear();
    uncore.service(req(MsgType::GetS, 1, 0x10040, 10), out);
    // grant1 = 11, grant2 = max(11, 12) = 12; different banks so no
    // bank conflict; miss -> 112; response bus busy until 113 from
    // the first response, so resp2 = max(112,113)+2 = 115.
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].msg.ts, 115u);
    EXPECT_EQ(stats.busQueueingCycles, 1u);
}

TEST_F(UncoreFixture, L2EvictionBackInvalidatesL1Copies)
    {
    // Fill one L2 set (4 ways) with conflicting tags until the first
    // line is evicted; the set index is hashed, so discover the
    // conflicting addresses instead of computing a stride.
    std::vector<Addr> lines{0x0};
    const std::uint32_t set = uncore.l2().setIndexOf(0x0);
    for (Addr a = 64; lines.size() < 5; a += 64) {
        if (uncore.l2().setIndexOf(a) == set)
            lines.push_back(a);
    }
    uncore.service(req(MsgType::GetS, 0, lines[0], 1), out);
    for (int i = 1; i <= 4; ++i) {
        out.clear();
        uncore.service(req(MsgType::GetS, 1, lines[i], 10 + i), out);
    }
    // The 5th fill in the set evicts line 0x0, which core 0 holds.
    const Outbound *inv = findMsg(out, MsgType::SnoopInv);
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->dst, 0u);
    EXPECT_GE(stats.backInvalidations, 1u);
    const MapEntry *e = uncore.map().find(0x0);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->empty());
}

TEST_F(UncoreFixture, InstructionFetchSharersTracked)
{
    uncore.service(req(MsgType::GetS, 0, 0x7000, 5, CacheKind::Instr),
                   out);
    const MapEntry *e = uncore.map().find(0x7000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->iSharers, 1u);
    EXPECT_EQ(e->dSharers, 0u);
    // Instruction fills are never exclusive.
    EXPECT_EQ(static_cast<MesiState>(out[0].msg.grantState),
              MesiState::Shared);
}

TEST_F(UncoreFixture, LockGrantAndFifoQueueing)
{
    uncore.service(req(MsgType::LockAcq, 0, 0, 10), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].msg.type, MsgType::SyncGrant);
    EXPECT_EQ(out[0].msg.ts, 16u); // 10 + syncLatency

    out.clear();
    uncore.service(req(MsgType::LockAcq, 1, 0, 20), out);
    uncore.service(req(MsgType::LockAcq, 2, 0, 30), out);
    EXPECT_TRUE(out.empty()); // queued
    EXPECT_EQ(stats.lockQueued, 2u);

    uncore.service(req(MsgType::LockRel, 0, 0, 100), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dst, 1u); // FIFO order
    EXPECT_EQ(out[0].msg.ts, 106u); // max(20,100)+6

    out.clear();
    uncore.service(req(MsgType::LockRel, 1, 0, 150), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dst, 2u);
}

TEST_F(UncoreFixture, BarrierReleasesAllAtMaxArrival)
{
    uncore.service(req(MsgType::BarArrive, 0, 0, 10), out);
    uncore.service(req(MsgType::BarArrive, 1, 0, 50), out);
    uncore.service(req(MsgType::BarArrive, 2, 0, 30), out);
    EXPECT_TRUE(out.empty());
    uncore.service(req(MsgType::BarArrive, 3, 0, 40), out);
    ASSERT_EQ(out.size(), 4u);
    for (const auto &o : out)
        EXPECT_EQ(o.msg.ts, 56u); // max(arrivals)=50 + 6
    EXPECT_EQ(stats.barrierEpisodes, 1u);
    // Barrier is reusable immediately.
    out.clear();
    for (CoreId c = 0; c < 4; ++c)
        uncore.service(req(MsgType::BarArrive, c, 0, 100 + c), out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(stats.barrierEpisodes, 2u);
}

TEST_F(UncoreFixture, SyncRequestsCauseNoBusViolations)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 100), out);
    uncore.service(req(MsgType::LockAcq, 1, 0, 10), out);
    EXPECT_EQ(violations.busViolations, 0u);
}

TEST_F(UncoreFixture, SnapshotRoundTrip)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    uncore.service(req(MsgType::GetM, 1, 0x2000, 20), out);
    uncore.service(req(MsgType::LockAcq, 2, 1, 30), out);
    uncore.service(req(MsgType::LockAcq, 3, 1, 40), out); // queued

    SnapshotWriter w;
    uncore.save(w);
    const UncoreStats stats_before = stats;

    // Mutate.
    uncore.service(req(MsgType::GetM, 2, 0x1000, 50), out);
    uncore.service(req(MsgType::LockRel, 2, 1, 60), out);

    SnapshotReader r(w.bytes());
    uncore.restore(r);
    EXPECT_TRUE(r.exhausted());
    const MapEntry *e = uncore.map().find(0x1000);
    ASSERT_NE(e, nullptr);
    // Core 0's exclusive GetS made it the owner; core 2's post-
    // snapshot GetM must not have stuck after the restore.
    EXPECT_EQ(e->owner, 0u);
    EXPECT_EQ(uncore.map().find(0x2000)->owner, 1u);
    EXPECT_TRUE(uncore.sync().lockHeld(1));
    EXPECT_EQ(uncore.sync().lockHolder(1), 2u);
    EXPECT_EQ(uncore.sync().lockQueueDepth(1), 1u);
    EXPECT_EQ(stats.busRequests, stats_before.busRequests);
}

TEST(GlobalCacheMap, MonitorAndInvariants)
{
    GlobalCacheMap map;
    MapEntry &e = map.entry(0x40);
    EXPECT_FALSE(map.recordTransition(e, 10, 0));
    EXPECT_EQ(e.lastTouch, 0u);
    EXPECT_FALSE(map.recordTransition(e, 10, 1)); // equal is fine
    EXPECT_EQ(e.lastTouch, 1u);
    EXPECT_TRUE(map.recordTransition(e, 5, 2)); // older -> violation
    // Violations leave both the monitor and the attribution alone.
    EXPECT_EQ(e.lastTouch, 1u);
    EXPECT_EQ(e.monitorTs, 10u);
    EXPECT_FALSE(map.recordTransition(e, 20, 3));
    EXPECT_EQ(e.lastTouch, 3u);
    e.owner = 2;
    e.dSharers = 1ull << 2;
    map.checkInvariants();
    EXPECT_EQ(map.size(), 1u);
    e.owner = invalidCore;
    e.dSharers = 0;
    map.eraseIfEmpty(0x40);
    EXPECT_EQ(map.size(), 0u);
}

namespace {

/** Find addresses beyond `start` mapping to the same L2 set (the
 *  index is hashed, so conflicts are discovered, not computed). */
std::vector<Addr>
conflictingLines(const L2Tags &l2, Addr start, std::size_t count)
{
    std::vector<Addr> lines{start};
    const std::uint32_t set = l2.setIndexOf(start);
    for (Addr a = start + 64; lines.size() < count; a += 64) {
        if (l2.setIndexOf(a) == set)
            lines.push_back(a);
    }
    return lines;
}

} // namespace

TEST(L2Tags, FillLookupEvict)
{
    L2Params p;
    p.totalKb = 16;
    p.ways = 2;
    p.banks = 2;
    L2Tags l2(p);
    const auto lines = conflictingLines(l2, 0x0, 3);
    EXPECT_FALSE(l2.probe(lines[0]));
    EXPECT_FALSE(l2.fill(lines[0], false).evicted);
    EXPECT_TRUE(l2.lookup(lines[0]));
    EXPECT_FALSE(l2.fill(lines[1], true).evicted);
    l2.lookup(lines[0]); // make the dirty line LRU victim
    const auto fill = l2.fill(lines[2], false);
    EXPECT_TRUE(fill.evicted);
    EXPECT_TRUE(fill.victimDirty);
    EXPECT_EQ(fill.victimLine, lines[1]);
    l2.checkInvariants();
}

TEST(L2Tags, IndexHashSpreadsPowerOfTwoStrides)
{
    // The pathological pattern that motivated the hash: large
    // power-of-two strides (per-core code/private regions) must not
    // all land in one set.
    L2Params p;
    L2Tags l2(p);
    std::set<std::uint32_t> sets;
    for (Addr t = 0; t < 16; ++t)
        sets.insert(l2.setIndexOf(0x100000000ull + t * 0x10000000ull));
    EXPECT_GT(sets.size(), 8u);
}

TEST(L2Tags, WritebackInstallsWhenAbsent)
{
    L2Params p;
    p.totalKb = 16;
    p.ways = 2;
    p.banks = 2;
    L2Tags l2(p);
    l2.writeback(0x1000);
    EXPECT_TRUE(l2.probe(0x1000));
    EXPECT_EQ(l2.validCount(), 1u);
}

TEST(L2Tags, BankSelection)
{
    L2Params p;
    p.banks = 4;
    L2Tags l2(p);
    EXPECT_EQ(l2.bank(0x00), 0u);
    EXPECT_EQ(l2.bank(0x40), 1u);
    EXPECT_EQ(l2.bank(0x80), 2u);
    EXPECT_EQ(l2.bank(0xc0), 3u);
    EXPECT_EQ(l2.bank(0x100), 0u);
}

TEST(SyncArbiterDeath, DoubleBarrierArrivalPanics)
{
    UncoreStats stats;
    SyncArbiter arb(1, 1, 4, 6, &stats);
    std::vector<SyncGrantMsg> out;
    BusMsg m;
    m.type = MsgType::BarArrive;
    m.src = 0;
    m.sync = 0;
    arb.handle(m, out);
    EXPECT_DEATH(arb.handle(m, out), "arrives twice");
}

TEST(SyncArbiterDeath, ReleasingUnheldLockPanics)
{
    UncoreStats stats;
    SyncArbiter arb(1, 1, 4, 6, &stats);
    std::vector<SyncGrantMsg> out;
    BusMsg m;
    m.type = MsgType::LockRel;
    m.src = 0;
    m.sync = 0;
    EXPECT_DEATH(arb.handle(m, out), "does not hold");
}

TEST(Protocol, MsiNeverGrantsExclusive)
{
    UncoreStats stats;
    ViolationStats violations;
    UncoreParams params = smallUncore();
    params.protocol = CoherenceProtocol::MSI;
    Uncore uncore(params, &stats, &violations);
    std::vector<Outbound> out;
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(static_cast<MesiState>(out[0].msg.grantState),
              MesiState::Shared);
    // Under MSI the sole reader is not an owner: a second GetS needs
    // no snoop-downgrade.
    out.clear();
    uncore.service(req(MsgType::GetS, 1, 0x1000, 20), out);
    EXPECT_EQ(findMsg(out, MsgType::SnoopDown), nullptr);
}

TEST(Protocol, MesiGrantsExclusiveToSoleReader)
{
    UncoreStats stats;
    ViolationStats violations;
    UncoreParams params = smallUncore();
    params.protocol = CoherenceProtocol::MESI;
    Uncore uncore(params, &stats, &violations);
    std::vector<Outbound> out;
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    EXPECT_EQ(static_cast<MesiState>(out[0].msg.grantState),
              MesiState::Exclusive);
}

TEST_F(UncoreFixture, BusQueueHistogramTracksEveryRequest)
{
    uncore.service(req(MsgType::GetS, 0, 0x1000, 10), out);
    uncore.service(req(MsgType::GetS, 1, 0x2000, 10), out);
    uncore.service(req(MsgType::GetS, 2, 0x3000, 10), out);
    EXPECT_EQ(uncore.busQueueHistogram().count(), 3u);
    // The first request waited 0 cycles; the later ones queued.
    EXPECT_EQ(uncore.busQueueHistogram().min(), 0u);
    EXPECT_EQ(uncore.busQueueHistogram().sum(),
              stats.busQueueingCycles);
}
