/**
 * @file
 * End-to-end job server tests: a real daemon (in-process) behind a
 * real Unix socket, driven through the Client protocol layer — mixed
 * concurrent jobs under the thread budget, bit-identical results vs
 * standalone runs, mid-run cancellation with a partial report, spec
 * rejection over the wire, and graceful drain shutdown.
 */

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include <gtest/gtest.h>

#include "core/run.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/json_parse.hh"

using namespace slacksim;
using namespace slacksim::serve;

namespace {

/** One in-process daemon per test, torn down by drain shutdown.
 *  @p tweak edits the options (isolation mode, recovery) before the
 *  server starts. */
class ServerHarness
{
  public:
    explicit ServerHarness(
        const std::string &tag, std::uint32_t threads,
        const std::function<void(Server::Options &)> &tweak = {})
    {
        opts_.socketPath = tag + ".sock";
        opts_.outRoot = tag + "-out";
        opts_.threadBudget = threads;
        opts_.drainDeadlineMs = 120000;
        if (tweak)
            tweak(opts_);
        server_ = std::make_unique<Server>(opts_);
        EXPECT_TRUE(server_->start());
        runner_ = std::thread([this] { server_->run(); });
    }

    ~ServerHarness()
    {
        if (runner_.joinable()) {
            std::string error;
            Client(opts_.socketPath).shutdown(true, &error);
            runner_.join();
        }
    }

    Server &server() { return *server_; }
    const std::string &socket() const { return opts_.socketPath; }
    const std::string &outRoot() const { return opts_.outRoot; }

  private:
    Server::Options opts_;
    std::unique_ptr<Server> server_;
    std::thread runner_;
};

std::string
specJson(const std::string &kernel, unsigned cores,
         const std::string &extra = "")
{
    std::ostringstream os;
    os << "{\"version\": \"slacksim.job.v1\", \"kernel\": \"" << kernel
       << "\", \"cores\": " << cores
       << ", \"scheme\": \"quantum\", \"quantum\": 16"
       << ", \"max_uops\": 80000";
    if (!extra.empty())
        os << ", " << extra;
    os << "}";
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Poll the daemon until every job is terminal (or 60s pass). */
bool
waitAllTerminal(Client &client)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    std::string error;
    while (std::chrono::steady_clock::now() < deadline) {
        json::Value reply;
        if (!client.stats(&reply, &error))
            return false;
        const json::Value &queue = reply.at("queue");
        if (queue.at("queued").asUint() == 0 &&
            queue.at("running").asUint() == 0) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return false;
}

} // namespace

TEST(ServeE2ETest, EightMixedJobsUnderBudgetAllComplete)
{
    // 16 pool threads; each 4-core parallel job reserves 5, so at
    // most three run concurrently and the rest queue behind them.
    ServerHarness harness("serve_e2e_mixed", 16);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    const std::vector<std::string> kernels = {
        "fft", "radix", "pingpong", "stream",
        "falseshare", "uniform", "syncstorm", "fft"};
    std::string error;
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        // One job carries a fault spec (host-timing perturbation
        // only) and one runs on the serial engine. The parallel jobs
        // pin host_threads so the task accounting below is exact on
        // any machine (auto topology sizes from the host CPU count).
        std::string extra = "\"seed\": " + std::to_string(100 + i);
        if (i == 2)
            extra += ", \"fault_spec\": \"worker-stall@cycle:500:2\"";
        if (i == 5)
            extra += ", \"parallel_host\": false";
        else
            extra += ", \"host_threads\": 5";
        const std::uint64_t id =
            client.submit(specJson(kernels[i], 4, extra), &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }

    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.stats(&reply, &error)) << error;
    EXPECT_EQ(reply.at("queue").at("done").asUint(), kernels.size());
    EXPECT_EQ(reply.at("queue").at("failed").asUint(), 0u);

    // The tentpole acceptance proof: every job ran on the persistent
    // pool — threads were reused, none spawned per run.
    const json::Value &pool = reply.at("pool");
    EXPECT_EQ(pool.at("threads_spawned").asUint(), 16u);
    EXPECT_EQ(pool.at("overflow_spawns").asUint(), 0u);
    // 7 parallel jobs x 5 tasks + 1 serial job x 1 task.
    EXPECT_EQ(pool.at("tasks_run").asUint(), 36u);

    // Every job produced a schema-valid report in its own directory.
    for (const std::uint64_t id : ids) {
        const std::string report = slurp(
            harness.outRoot() + "/job-" + std::to_string(id) +
            "/report.json");
        ASSERT_FALSE(report.empty()) << "job " << id;
        const json::Value doc = json::parse(report);
        EXPECT_EQ(doc.at("schema").asString(),
                  "slacksim.run_report.v5");
        EXPECT_EQ(doc.at("status").asString(), "ok");
    }
}

TEST(ServeE2ETest, DaemonResultsBitIdenticalToStandaloneRun)
{
    ServerHarness harness("serve_e2e_ident", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Cycle-by-cycle service: the one scheme whose simulated cycle
    // count is bit-deterministic on the threaded host, so daemon and
    // standalone runs are comparable exactly (slack schemes keep uop
    // counts stable but their cycle counts shift with host timing).
    std::string error;
    const std::string spec_json =
        R"({"version": "slacksim.job.v1", "kernel": "radix",
            "cores": 4, "scheme": "cc", "max_uops": 30000,
            "seed": 1234})";
    const std::uint64_t id = client.submit(spec_json, &error);
    ASSERT_NE(id, 0u) << error;
    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.status(id, &reply, &error)) << error;
    const json::Value &job = reply.at("jobs").item(0);
    ASSERT_EQ(job.at("state").asString(), "done");

    // Same spec, standalone path: spawn/join threads, no pool, no
    // daemon — committed work and simulated time must match exactly.
    JobSpec spec;
    ASSERT_TRUE(
        JobSpec::parse(json::parse(spec_json), &spec, &error))
        << error;
    const RunResult solo = runSimulation(spec.toConfig());
    EXPECT_EQ(job.at("committed_uops").asUint(), solo.committedUops);
    EXPECT_EQ(job.at("simulated_cycles").asUint(), solo.execCycles);
}

TEST(ServeE2ETest, CancelMidRunYieldsPartialCancelledReport)
{
    ServerHarness harness("serve_e2e_cancel", 16);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Uncapped lu runs for seconds — a wide window to cancel into.
    std::string error;
    const std::uint64_t id = client.submit(
        R"({"kernel": "lu", "cores": 8, "scheme": "bounded",
            "slack": 16})",
        &error);
    ASSERT_NE(id, 0u) << error;

    // Wait until it is actually running, then cancel.
    for (int i = 0; i < 500; ++i) {
        json::Value reply;
        ASSERT_TRUE(client.status(id, &reply, &error)) << error;
        const std::string state =
            reply.at("jobs").item(0).at("state").asString();
        ASSERT_NE(state, "done") << "job finished before cancel";
        if (state == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(client.cancel(id, &error)) << error;
    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.status(id, &reply, &error)) << error;
    EXPECT_EQ(reply.at("jobs").item(0).at("state").asString(),
              "cancelled");

    // The partial run still flushed a report, marked cancelled.
    const std::string report = slurp(harness.outRoot() + "/job-" +
                                     std::to_string(id) +
                                     "/report.json");
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(json::parse(report).at("status").asString(),
              "cancelled");
}

TEST(ServeE2ETest, WatchStreamsStatesAndArtifacts)
{
    ServerHarness harness("serve_e2e_watch", 8);
    Client submit_client(harness.socket());
    ASSERT_TRUE(submit_client.valid());

    std::string error;
    const std::uint64_t id = submit_client.submit(
        specJson("fft", 4, "\"seed\": 5"), &error);
    ASSERT_NE(id, 0u) << error;

    // Watch on a second connection (watch consumes its connection).
    Client watcher(harness.socket());
    ASSERT_TRUE(watcher.valid());
    std::vector<std::string> states;
    bool saw_report = false, saw_metrics = false;
    std::string end_state;
    ASSERT_TRUE(watcher.watch(
        id,
        [&](const json::Value &event) {
            const std::string &kind = event.at("event").asString();
            if (kind == "state")
                states.push_back(event.at("state").asString());
            else if (kind == "report") {
                saw_report = true;
                // The streamed report is the real artifact.
                EXPECT_EQ(json::parse(event.at("json").asString())
                              .at("status")
                              .asString(),
                          "ok");
            } else if (kind == "metrics")
                saw_metrics = true;
            else if (kind == "end")
                end_state = event.at("state").asString();
        },
        &error))
        << error;

    EXPECT_EQ(end_state, "done");
    EXPECT_TRUE(saw_report);
    EXPECT_TRUE(saw_metrics);
    ASSERT_FALSE(states.empty());
    EXPECT_EQ(states.back(), "done");
}

TEST(ServeE2ETest, ProtocolRejectsBadInput)
{
    ServerHarness harness("serve_e2e_reject", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    std::string error;
    // Typoed kernel: rejected with a did-you-mean, nothing enqueued.
    EXPECT_EQ(client.submit(R"({"kernel": "fftt"})", &error), 0u);
    EXPECT_NE(error.find("did you mean 'fft'"), std::string::npos);

    // A job wider than the whole budget can never run: refused at
    // submit rather than queued forever.
    EXPECT_EQ(client.submit(R"({"kernel": "fft", "cores": 64})",
                            &error),
              0u);
    EXPECT_NE(error.find("budget"), std::string::npos);

    // Unknown op with a hint; unknown job id.
    json::Value reply;
    EXPECT_FALSE(
        client.request("{\"op\": \"sumbit\"}", &reply, &error));
    EXPECT_NE(error.find("did you mean 'submit'"), std::string::npos);
    EXPECT_FALSE(client.cancel(999, &error));
    EXPECT_NE(error.find("no such job"), std::string::npos);

    // Garbage frame: a readable error, and the connection survives
    // for the next request.
    EXPECT_FALSE(client.request("not json at all", &reply, &error));
    EXPECT_NE(error.find("bad frame"), std::string::npos);
    EXPECT_TRUE(client.stats(&reply, &error)) << error;

    json::Value stats_reply;
    ASSERT_TRUE(client.stats(&stats_reply, &error));
    EXPECT_EQ(stats_reply.at("queue").at("submitted").asUint(), 0u);
}

TEST(ServeE2ETest, TelemetryMetricsEventsAndCorrelation)
{
    const std::string out_root = "serve_e2e_tel-out";
    std::vector<std::uint64_t> ids;
    {
        ServerHarness harness("serve_e2e_tel", 16);
        Client client(harness.socket());
        ASSERT_TRUE(client.valid());

        std::string error;
        for (int i = 0; i < 3; ++i) {
            // The first job also exercises the per-job trace and
            // profile sinks (correlation-named artifacts).
            std::string extra = "\"seed\": " + std::to_string(7 + i) +
                                ", \"host_threads\": 5";
            if (i == 0)
                extra += ", \"trace\": true, \"profile\": true";
            const std::uint64_t id =
                client.submit(specJson("fft", 4, extra), &error);
            ASSERT_NE(id, 0u) << error;
            ids.push_back(id);
        }

        // Mid-batch scrape: the exposition parses and carries the
        // submission counter even while jobs are still in flight.
        std::string text;
        ASSERT_TRUE(client.metricsText(&text, &error)) << error;
        EXPECT_NE(text.find("# TYPE slacksim_jobs_submitted_total "
                            "counter"),
                  std::string::npos);
        EXPECT_NE(text.find("slacksim_jobs_submitted_total 3"),
                  std::string::npos);
        EXPECT_NE(text.find("slacksim_queue_wait_ms_bucket{le=\"+Inf"
                            "\"}"),
                  std::string::npos);

        ASSERT_TRUE(waitAllTerminal(client));

        // Coherence: every submitted job reached exactly one terminal
        // status, and both latency histograms saw every job.
        json::Value stats;
        ASSERT_TRUE(client.stats(&stats, &error)) << error;
        const json::Value &tel = stats.at("telemetry");
        EXPECT_EQ(tel.at("jobs_submitted").asUint(), 3u);
        EXPECT_EQ(tel.at("jobs_terminal").asUint(), 3u);
        EXPECT_EQ(tel.at("queue_wait_ms").at("count").asUint(), 3u);
        EXPECT_EQ(tel.at("run_duration_ms").at("count").asUint(), 3u);
        EXPECT_GT(tel.at("events_recorded").asUint(), 0u);

        // End-to-end correlation: the run report carries the job id
        // and the build stamp; the metrics CSV schema line and the
        // trace/profile filenames carry the same id.
        for (const std::uint64_t id : ids) {
            const std::string tag = "job-" + std::to_string(id);
            const std::string dir = harness.outRoot() + "/" + tag;
            const json::Value report =
                json::parse(slurp(dir + "/report.json"));
            EXPECT_EQ(report.at("job_id").asString(), tag);
            EXPECT_EQ(report.at("forensics").at("job_id").asString(),
                      tag);
            EXPECT_FALSE(report.at("generator")
                             .at("build")
                             .at("git")
                             .asString()
                             .empty());
            const std::string csv = slurp(dir + "/metrics.csv");
            EXPECT_NE(csv.find("job_id=" + tag), std::string::npos);
        }
        const std::string tag0 = "job-" + std::to_string(ids[0]);
        EXPECT_FALSE(slurp(harness.outRoot() + "/" + tag0 + "/" +
                           tag0 + ".trace.json")
                         .empty());
        EXPECT_FALSE(slurp(harness.outRoot() + "/" + tag0 + "/" +
                           tag0 + ".profile.folded")
                         .empty());
    }
    // The harness destructor drained and sealed the event log; the
    // lifecycle of every job must now read in order.
    const std::string events = slurp(out_root + "/server_events.jsonl");
    ASSERT_FALSE(events.empty());
    std::istringstream is(events);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(json::parse(line).at("schema").asString(),
              "slacksim.server_events.v1");
    std::map<std::uint64_t, std::vector<std::string>> perJob;
    std::uint64_t last_seq = 0;
    while (std::getline(is, line)) {
        const json::Value ev = json::parse(line);
        EXPECT_EQ(ev.at("seq").asUint(), last_seq + 1);
        last_seq = ev.at("seq").asUint();
        perJob[ev.at("job").asUint()].push_back(
            ev.at("event").asString());
    }
    for (const std::uint64_t id : ids) {
        ASSERT_TRUE(perJob.count(id)) << "job " << id;
        // Heartbeats may interleave; the five lifecycle transitions
        // must appear in order.
        const std::vector<std::string> want = {
            "submitted", "validated", "admitted", "started",
            "completed"};
        std::size_t next = 0;
        for (const std::string &name : perJob[id]) {
            if (next < want.size() && name == want[next])
                ++next;
        }
        EXPECT_EQ(next, want.size()) << "job " << id;
    }
}

TEST(ServeE2ETest, IsolatedCrashLeavesDaemonAndSiblingsRunning)
{
    // The tentpole acceptance proof: eight process-isolated jobs, one
    // of which segfaults mid-run. The other seven must complete, the
    // daemon must stay up, and the crash must land as exactly one
    // `crashed` terminal state with a stub crash report.
    ServerHarness harness("serve_e2e_crash", 16,
                          [](Server::Options &o) {
                              o.defaultIsolation = "process";
                          });
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    std::string error;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
        std::string extra = "\"seed\": " + std::to_string(200 + i) +
                            ", \"host_threads\": 5" +
                            ", \"max_attempts\": 1";
        // Job 3 of the batch dies by SIGSEGV deep inside engine code.
        if (i == 2)
            extra += ", \"fault_spec\": \"job-crash@cycle:2000\"";
        const std::uint64_t id =
            client.submit(specJson("fft", 4, extra), &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }

    ASSERT_TRUE(waitAllTerminal(client));

    // The daemon survived (this very request proves it) and kept the
    // books: 7 done, exactly 1 crashed, nothing failed.
    json::Value reply;
    ASSERT_TRUE(client.stats(&reply, &error)) << error;
    EXPECT_EQ(reply.at("queue").at("done").asUint(), 7u);
    EXPECT_EQ(reply.at("queue").at("crashed").asUint(), 1u);
    EXPECT_EQ(reply.at("queue").at("failed").asUint(), 0u);
    EXPECT_EQ(reply.at("telemetry").at("jobs_crashed").asUint(), 1u);

    // The crashed job reports its signal; the siblings their reports.
    ASSERT_TRUE(client.status(ids[2], &reply, &error)) << error;
    const json::Value &crashed = reply.at("jobs").item(0);
    EXPECT_EQ(crashed.at("state").asString(), "crashed");
    EXPECT_EQ(crashed.at("crash_signal").asString(), "SIGSEGV");
    const std::string stub =
        slurp(harness.outRoot() + "/job-" + std::to_string(ids[2]) +
              "/report.json");
    ASSERT_FALSE(stub.empty());
    const json::Value stub_doc = json::parse(stub);
    EXPECT_EQ(stub_doc.at("schema").asString(),
              "slacksim.crash_report.v1");
    EXPECT_EQ(stub_doc.at("signal_name").asString(), "SIGSEGV");
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i == 2)
            continue;
        const std::string report =
            slurp(harness.outRoot() + "/job-" +
                  std::to_string(ids[i]) + "/report.json");
        ASSERT_FALSE(report.empty()) << "job " << ids[i];
        EXPECT_EQ(json::parse(report).at("status").asString(), "ok");
    }

    // The crash shows up in the Prometheus exposition by signal.
    std::string text;
    ASSERT_TRUE(client.metricsText(&text, &error)) << error;
    EXPECT_NE(text.find("slacksim_jobs_crashed_total{"
                        "signal=\"SIGSEGV\"} 1"),
              std::string::npos);
}

TEST(ServeE2ETest, WreckingFaultNeedsProcessIsolationAtSubmit)
{
    // On a daemon whose default is inline execution, a job-crash
    // spec that does not opt into process isolation is refused at
    // submit — accepting it would let one client kill the fleet.
    ServerHarness harness("serve_e2e_wreck", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    std::string error;
    EXPECT_EQ(client.submit(
                  specJson("fft", 2,
                           "\"fault_spec\": \"job-crash@cycle:99\""),
                  &error),
              0u);
    EXPECT_NE(error.find("process"), std::string::npos);
}

TEST(ServeE2ETest, IdempotencyKeyDeduplicatesRetriedSubmit)
{
    ServerHarness harness("serve_e2e_idem", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Same key twice — as a retrying client would after losing the
    // first reply — must map to ONE job, flagged as a duplicate.
    std::string error;
    bool duplicate = false;
    const std::string spec = specJson("fft", 2, "\"seed\": 77");
    const std::uint64_t first =
        client.submit(spec, &error, "retry-key-1", &duplicate);
    ASSERT_NE(first, 0u) << error;
    EXPECT_FALSE(duplicate);
    const std::uint64_t second =
        client.submit(spec, &error, "retry-key-1", &duplicate);
    EXPECT_EQ(second, first);
    EXPECT_TRUE(duplicate);
    // A different key is a different job.
    const std::uint64_t third =
        client.submit(spec, &error, "retry-key-2", &duplicate);
    EXPECT_NE(third, first);
    EXPECT_FALSE(duplicate);

    ASSERT_TRUE(waitAllTerminal(client));
    json::Value reply;
    ASSERT_TRUE(client.stats(&reply, &error)) << error;
    EXPECT_EQ(reply.at("queue").at("done").asUint(), 2u);
}

TEST(ServeE2ETest, RecoverReplaysJournaledJobs)
{
    // Forge the journal a crashed daemon would have left behind: one
    // job that never started (re-admit as-is) and one that was
    // running at crash time (retry, attempt+1). Then boot a server
    // with --recover semantics over that outRoot.
    const std::string out_root = "serve_e2e_recover-out";
    ::mkdir(out_root.c_str(), 0775);
    const std::string spec =
        "{\"kernel\": \"fft\", \"cores\": 2, \"scheme\": "
        "\"quantum\", \"quantum\": 16, \"max_uops\": 40000, "
        "\"host_threads\": 3, \"seed\": 11}";
    {
        std::ofstream j(out_root + "/server_events.jsonl",
                        std::ios::trunc);
        j << "{\"schema\": \"slacksim.server_events.v1\"}\n"
          << "{\"seq\": 1, \"event\": \"submitted\", \"job\": 1, "
             "\"attempt\": 1, \"max_attempts\": 3, "
             "\"idempotency_key\": \"recover-a\", \"spec\": "
          << spec << "}\n"
          << "{\"seq\": 2, \"event\": \"submitted\", \"job\": 2, "
             "\"attempt\": 1, \"max_attempts\": 3, "
             "\"idempotency_key\": \"recover-b\", \"spec\": "
          << spec << "}\n"
          << "{\"seq\": 3, \"event\": \"started\", \"job\": 2}\n";
    }

    ServerHarness harness("serve_e2e_recover", 8,
                          [](Server::Options &o) {
                              o.recover = true;
                          });
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    ASSERT_TRUE(waitAllTerminal(client));
    std::string error;
    json::Value reply;
    ASSERT_TRUE(client.stats(&reply, &error)) << error;
    EXPECT_EQ(reply.at("queue").at("done").asUint(), 2u);
    const json::Value &tel = reply.at("telemetry");
    EXPECT_EQ(tel.at("jobs_recovered").asUint(), 2u);
    EXPECT_EQ(tel.at("jobs_retried").asUint(), 1u);

    // The consumed generation was rotated aside, and the fresh log
    // records the recovery decisions.
    EXPECT_FALSE(
        slurp(out_root + "/server_events.jsonl.1").empty());
    const std::string events =
        slurp(out_root + "/server_events.jsonl");
    EXPECT_NE(events.find("\"recovered\""), std::string::npos);
    EXPECT_NE(events.find("\"retried\""), std::string::npos);

    // An idempotent resubmit of the recovered job still dedups after
    // the restart — the key survived the journal round-trip.
    bool duplicate = false;
    const std::uint64_t id =
        client.submit(spec, &error, "recover-a", &duplicate);
    ASSERT_NE(id, 0u) << error;
    EXPECT_TRUE(duplicate);
}

TEST(ServeE2ETest, WatchResumesAcrossFromSeq)
{
    // from_seq filtering: a watcher that reports the seq it already
    // saw must not receive those transitions again (the resume path
    // Client::watch uses after a reconnect).
    ServerHarness harness("serve_e2e_seq", 8);
    Client submit_client(harness.socket());
    ASSERT_TRUE(submit_client.valid());

    std::string error;
    const std::uint64_t id = submit_client.submit(
        specJson("fft", 2, "\"seed\": 3, \"host_threads\": 3"),
        &error);
    ASSERT_NE(id, 0u) << error;
    ASSERT_TRUE(waitAllTerminal(submit_client));

    // Watching the finished job emits its current state once, with
    // the job's final seq.
    std::vector<std::uint64_t> seqs;
    std::string end_state;
    Client w1(harness.socket());
    ASSERT_TRUE(w1.watch(
        id,
        [&](const json::Value &ev) {
            if (ev.at("event").asString() == "state")
                seqs.push_back(ev.at("seq").asUint());
            else if (ev.at("event").asString() == "end")
                end_state = ev.at("state").asString();
        },
        &error))
        << error;
    ASSERT_EQ(seqs.size(), 1u);
    EXPECT_EQ(end_state, "done");
    const std::uint64_t final_seq = seqs.front();
    EXPECT_GE(final_seq, 3u); // submit=1, admit=2, retire=3

    // A resumer that already saw final_seq gets NO state replay —
    // just the end frame. One that saw final_seq-1 gets exactly the
    // missed transition. Speak the wire directly so the from_seq
    // under test is explicit.
    const auto countStates = [&](std::uint64_t from_seq) {
        UdsConn raw = UdsConn::connect(harness.socket());
        EXPECT_TRUE(raw.valid());
        EXPECT_TRUE(raw.sendLine(
            "{\"op\": \"watch\", \"id\": " + std::to_string(id) +
            ", \"from_seq\": " + std::to_string(from_seq) + "}"));
        std::size_t states = 0;
        while (true) {
            std::string line;
            if (raw.recvLine(line, 30000) != UdsConn::Recv::Line)
                break;
            const json::Value ev = json::parse(line);
            EXPECT_TRUE(ev.at("ok").asBool());
            if (ev.at("event").asString() == "state") {
                ++states;
                EXPECT_GT(ev.at("seq").asUint(), from_seq);
            }
            if (ev.at("event").asString() == "end") {
                EXPECT_EQ(ev.at("seq").asUint(), final_seq);
                break;
            }
        }
        return states;
    };
    EXPECT_EQ(countStates(final_seq), 0u);
    EXPECT_EQ(countStates(final_seq - 1), 1u);
}

TEST(ServeE2ETest, DrainShutdownFinishesQueuedJobs)
{
    ServerHarness harness("serve_e2e_drain", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // More jobs than can run at once (each reserves 5 of 8 threads,
    // so they serialize), then an immediate drain shutdown: every
    // queued job must still complete.
    std::string error;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t id = client.submit(
            specJson("pingpong", 4,
                     "\"seed\": " + std::to_string(i)),
            &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }
    ASSERT_TRUE(client.shutdown(true, &error)) << error;

    // The harness's server thread returns once the drain completes.
    // Verify outcome from the server object directly (the socket is
    // gone after shutdown).
    // Note: ~ServerHarness would also shut down; join here instead.
    const QueueStats stats = [&] {
        // Wait for run() to return via the harness destructor path:
        // poll the queue until idle, then check outcomes.
        while (!harness.server().queue().idle())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        return harness.server().queue().stats();
    }();
    EXPECT_EQ(stats.done, ids.size());
    EXPECT_EQ(stats.cancelled, 0u);
}

TEST(ServeE2ETest, FleetTraceMergesJobsOnOneTimeline)
{
    const std::string out_root = "serve_e2e_fleet-out";
    ServerHarness harness("serve_e2e_fleet", 16);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Three jobs: one carries a caller-chosen trace id and the full
    // per-job trace/profile sinks, the others let the server mint.
    std::string error;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 3; ++i) {
        std::string extra = "\"seed\": " + std::to_string(40 + i) +
                            ", \"host_threads\": 5";
        if (i == 0)
            extra += ", \"trace\": true, \"profile\": true, "
                     "\"trace_id\": \"feedc0defeedc0de\"";
        const std::uint64_t id =
            client.submit(specJson("fft", 4, extra), &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }
    ASSERT_TRUE(waitAllTerminal(client));

    // The caller-supplied trace id reached the engine: report.json's
    // v5 trace section carries it end to end.
    const json::Value report = json::parse(
        slurp(out_root + "/job-" + std::to_string(ids[0]) +
              "/report.json"));
    const json::Value &rt = report.at("trace");
    EXPECT_TRUE(rt.at("active").asBool());
    EXPECT_EQ(rt.at("trace_id").asString(), "feedc0defeedc0de");
    EXPECT_NE(rt.at("span_id").asString(), "0000000000000000");
    EXPECT_NE(rt.at("parent_span_id").asString(),
              "0000000000000000");

    // The merged fleet timeline over the wire.
    std::string merged;
    ASSERT_TRUE(client.fleetTrace(&merged, &error)) << error;
    const json::Value doc = json::parse(merged);
    EXPECT_EQ(doc.at("metadata").at("schema").asString(),
              "slacksim.fleet_trace.v1");
    EXPECT_EQ(doc.at("metadata").at("jobs").asUint(), 3u);

    // Every job contributes the full span ladder on one tid, every
    // span carries its join keys, and the spliced engine events from
    // job 1 rode in under the caller's trace id.
    std::map<std::string, std::set<std::string>> spans_by_job;
    std::set<std::string> trace_ids;
    for (const auto &ev : doc.at("traceEvents").array) {
        const std::string ph = ev.at("ph").asString();
        if (ph == "M")
            continue;
        ASSERT_TRUE(ev.has("args")) << ev.at("name").asString();
        const json::Value &args = ev.at("args");
        ASSERT_TRUE(args.has("job_id"));
        ASSERT_TRUE(args.has("trace_id"));
        const std::string job = args.at("job_id").asString();
        trace_ids.insert(args.at("trace_id").asString());
        if (ph == "B")
            spans_by_job[job].insert(ev.at("name").asString());
    }
    EXPECT_EQ(spans_by_job.size(), 3u);
    for (const std::uint64_t id : ids) {
        const auto &spans =
            spans_by_job["job-" + std::to_string(id)];
        EXPECT_TRUE(spans.count("job")) << id;
        EXPECT_TRUE(spans.count("validate")) << id;
        EXPECT_TRUE(spans.count("queued")) << id;
        EXPECT_TRUE(spans.count("run")) << id;
    }
    // One minted id per job plus the caller's: all distinct.
    EXPECT_EQ(trace_ids.size(), 3u);
    EXPECT_TRUE(trace_ids.count("feedc0defeedc0de"));
    // The traced job's engine-side spans were spliced in under the
    // same track: the engine-run root span rides next to the server
    // ladder for job 1.
    EXPECT_TRUE(spans_by_job["job-" + std::to_string(ids[0])].count(
        "engine-run"));

    // The journal agrees on the join key for the traced job.
    const std::string journal =
        slurp(out_root + "/server_events.jsonl");
    EXPECT_NE(journal.find("\"trace_id\":\"feedc0defeedc0de\""),
              std::string::npos);
}
