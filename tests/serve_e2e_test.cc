/**
 * @file
 * End-to-end job server tests: a real daemon (in-process) behind a
 * real Unix socket, driven through the Client protocol layer — mixed
 * concurrent jobs under the thread budget, bit-identical results vs
 * standalone runs, mid-run cancellation with a partial report, spec
 * rejection over the wire, and graceful drain shutdown.
 */

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/run.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/json_parse.hh"

using namespace slacksim;
using namespace slacksim::serve;

namespace {

/** One in-process daemon per test, torn down by drain shutdown. */
class ServerHarness
{
  public:
    explicit ServerHarness(const std::string &tag,
                           std::uint32_t threads)
    {
        opts_.socketPath = tag + ".sock";
        opts_.outRoot = tag + "-out";
        opts_.threadBudget = threads;
        opts_.drainDeadlineMs = 120000;
        server_ = std::make_unique<Server>(opts_);
        EXPECT_TRUE(server_->start());
        runner_ = std::thread([this] { server_->run(); });
    }

    ~ServerHarness()
    {
        if (runner_.joinable()) {
            std::string error;
            Client(opts_.socketPath).shutdown(true, &error);
            runner_.join();
        }
    }

    Server &server() { return *server_; }
    const std::string &socket() const { return opts_.socketPath; }
    const std::string &outRoot() const { return opts_.outRoot; }

  private:
    Server::Options opts_;
    std::unique_ptr<Server> server_;
    std::thread runner_;
};

std::string
specJson(const std::string &kernel, unsigned cores,
         const std::string &extra = "")
{
    std::ostringstream os;
    os << "{\"version\": \"slacksim.job.v1\", \"kernel\": \"" << kernel
       << "\", \"cores\": " << cores
       << ", \"scheme\": \"quantum\", \"quantum\": 16"
       << ", \"max_uops\": 80000";
    if (!extra.empty())
        os << ", " << extra;
    os << "}";
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Poll the daemon until every job is terminal (or 60s pass). */
bool
waitAllTerminal(Client &client)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    std::string error;
    while (std::chrono::steady_clock::now() < deadline) {
        json::Value reply;
        if (!client.stats(&reply, &error))
            return false;
        const json::Value &queue = reply.at("queue");
        if (queue.at("queued").asUint() == 0 &&
            queue.at("running").asUint() == 0) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    return false;
}

} // namespace

TEST(ServeE2ETest, EightMixedJobsUnderBudgetAllComplete)
{
    // 16 pool threads; each 4-core parallel job reserves 5, so at
    // most three run concurrently and the rest queue behind them.
    ServerHarness harness("serve_e2e_mixed", 16);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    const std::vector<std::string> kernels = {
        "fft", "radix", "pingpong", "stream",
        "falseshare", "uniform", "syncstorm", "fft"};
    std::string error;
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        // One job carries a fault spec (host-timing perturbation
        // only) and one runs on the serial engine. The parallel jobs
        // pin host_threads so the task accounting below is exact on
        // any machine (auto topology sizes from the host CPU count).
        std::string extra = "\"seed\": " + std::to_string(100 + i);
        if (i == 2)
            extra += ", \"fault_spec\": \"worker-stall@cycle:500:2\"";
        if (i == 5)
            extra += ", \"parallel_host\": false";
        else
            extra += ", \"host_threads\": 5";
        const std::uint64_t id =
            client.submit(specJson(kernels[i], 4, extra), &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }

    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.stats(&reply, &error)) << error;
    EXPECT_EQ(reply.at("queue").at("done").asUint(), kernels.size());
    EXPECT_EQ(reply.at("queue").at("failed").asUint(), 0u);

    // The tentpole acceptance proof: every job ran on the persistent
    // pool — threads were reused, none spawned per run.
    const json::Value &pool = reply.at("pool");
    EXPECT_EQ(pool.at("threads_spawned").asUint(), 16u);
    EXPECT_EQ(pool.at("overflow_spawns").asUint(), 0u);
    // 7 parallel jobs x 5 tasks + 1 serial job x 1 task.
    EXPECT_EQ(pool.at("tasks_run").asUint(), 36u);

    // Every job produced a schema-valid report in its own directory.
    for (const std::uint64_t id : ids) {
        const std::string report = slurp(
            harness.outRoot() + "/job-" + std::to_string(id) +
            "/report.json");
        ASSERT_FALSE(report.empty()) << "job " << id;
        const json::Value doc = json::parse(report);
        EXPECT_EQ(doc.at("schema").asString(),
                  "slacksim.run_report.v4");
        EXPECT_EQ(doc.at("status").asString(), "ok");
    }
}

TEST(ServeE2ETest, DaemonResultsBitIdenticalToStandaloneRun)
{
    ServerHarness harness("serve_e2e_ident", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Cycle-by-cycle service: the one scheme whose simulated cycle
    // count is bit-deterministic on the threaded host, so daemon and
    // standalone runs are comparable exactly (slack schemes keep uop
    // counts stable but their cycle counts shift with host timing).
    std::string error;
    const std::string spec_json =
        R"({"version": "slacksim.job.v1", "kernel": "radix",
            "cores": 4, "scheme": "cc", "max_uops": 30000,
            "seed": 1234})";
    const std::uint64_t id = client.submit(spec_json, &error);
    ASSERT_NE(id, 0u) << error;
    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.status(id, &reply, &error)) << error;
    const json::Value &job = reply.at("jobs").item(0);
    ASSERT_EQ(job.at("state").asString(), "done");

    // Same spec, standalone path: spawn/join threads, no pool, no
    // daemon — committed work and simulated time must match exactly.
    JobSpec spec;
    ASSERT_TRUE(
        JobSpec::parse(json::parse(spec_json), &spec, &error))
        << error;
    const RunResult solo = runSimulation(spec.toConfig());
    EXPECT_EQ(job.at("committed_uops").asUint(), solo.committedUops);
    EXPECT_EQ(job.at("simulated_cycles").asUint(), solo.execCycles);
}

TEST(ServeE2ETest, CancelMidRunYieldsPartialCancelledReport)
{
    ServerHarness harness("serve_e2e_cancel", 16);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // Uncapped lu runs for seconds — a wide window to cancel into.
    std::string error;
    const std::uint64_t id = client.submit(
        R"({"kernel": "lu", "cores": 8, "scheme": "bounded",
            "slack": 16})",
        &error);
    ASSERT_NE(id, 0u) << error;

    // Wait until it is actually running, then cancel.
    for (int i = 0; i < 500; ++i) {
        json::Value reply;
        ASSERT_TRUE(client.status(id, &reply, &error)) << error;
        const std::string state =
            reply.at("jobs").item(0).at("state").asString();
        ASSERT_NE(state, "done") << "job finished before cancel";
        if (state == "running")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(client.cancel(id, &error)) << error;
    ASSERT_TRUE(waitAllTerminal(client));

    json::Value reply;
    ASSERT_TRUE(client.status(id, &reply, &error)) << error;
    EXPECT_EQ(reply.at("jobs").item(0).at("state").asString(),
              "cancelled");

    // The partial run still flushed a report, marked cancelled.
    const std::string report = slurp(harness.outRoot() + "/job-" +
                                     std::to_string(id) +
                                     "/report.json");
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(json::parse(report).at("status").asString(),
              "cancelled");
}

TEST(ServeE2ETest, WatchStreamsStatesAndArtifacts)
{
    ServerHarness harness("serve_e2e_watch", 8);
    Client submit_client(harness.socket());
    ASSERT_TRUE(submit_client.valid());

    std::string error;
    const std::uint64_t id = submit_client.submit(
        specJson("fft", 4, "\"seed\": 5"), &error);
    ASSERT_NE(id, 0u) << error;

    // Watch on a second connection (watch consumes its connection).
    Client watcher(harness.socket());
    ASSERT_TRUE(watcher.valid());
    std::vector<std::string> states;
    bool saw_report = false, saw_metrics = false;
    std::string end_state;
    ASSERT_TRUE(watcher.watch(
        id,
        [&](const json::Value &event) {
            const std::string &kind = event.at("event").asString();
            if (kind == "state")
                states.push_back(event.at("state").asString());
            else if (kind == "report") {
                saw_report = true;
                // The streamed report is the real artifact.
                EXPECT_EQ(json::parse(event.at("json").asString())
                              .at("status")
                              .asString(),
                          "ok");
            } else if (kind == "metrics")
                saw_metrics = true;
            else if (kind == "end")
                end_state = event.at("state").asString();
        },
        &error))
        << error;

    EXPECT_EQ(end_state, "done");
    EXPECT_TRUE(saw_report);
    EXPECT_TRUE(saw_metrics);
    ASSERT_FALSE(states.empty());
    EXPECT_EQ(states.back(), "done");
}

TEST(ServeE2ETest, ProtocolRejectsBadInput)
{
    ServerHarness harness("serve_e2e_reject", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    std::string error;
    // Typoed kernel: rejected with a did-you-mean, nothing enqueued.
    EXPECT_EQ(client.submit(R"({"kernel": "fftt"})", &error), 0u);
    EXPECT_NE(error.find("did you mean 'fft'"), std::string::npos);

    // A job wider than the whole budget can never run: refused at
    // submit rather than queued forever.
    EXPECT_EQ(client.submit(R"({"kernel": "fft", "cores": 64})",
                            &error),
              0u);
    EXPECT_NE(error.find("budget"), std::string::npos);

    // Unknown op with a hint; unknown job id.
    json::Value reply;
    EXPECT_FALSE(
        client.request("{\"op\": \"sumbit\"}", &reply, &error));
    EXPECT_NE(error.find("did you mean 'submit'"), std::string::npos);
    EXPECT_FALSE(client.cancel(999, &error));
    EXPECT_NE(error.find("no such job"), std::string::npos);

    // Garbage frame: a readable error, and the connection survives
    // for the next request.
    EXPECT_FALSE(client.request("not json at all", &reply, &error));
    EXPECT_NE(error.find("bad frame"), std::string::npos);
    EXPECT_TRUE(client.stats(&reply, &error)) << error;

    json::Value stats_reply;
    ASSERT_TRUE(client.stats(&stats_reply, &error));
    EXPECT_EQ(stats_reply.at("queue").at("submitted").asUint(), 0u);
}

TEST(ServeE2ETest, TelemetryMetricsEventsAndCorrelation)
{
    const std::string out_root = "serve_e2e_tel-out";
    std::vector<std::uint64_t> ids;
    {
        ServerHarness harness("serve_e2e_tel", 16);
        Client client(harness.socket());
        ASSERT_TRUE(client.valid());

        std::string error;
        for (int i = 0; i < 3; ++i) {
            // The first job also exercises the per-job trace and
            // profile sinks (correlation-named artifacts).
            std::string extra = "\"seed\": " + std::to_string(7 + i) +
                                ", \"host_threads\": 5";
            if (i == 0)
                extra += ", \"trace\": true, \"profile\": true";
            const std::uint64_t id =
                client.submit(specJson("fft", 4, extra), &error);
            ASSERT_NE(id, 0u) << error;
            ids.push_back(id);
        }

        // Mid-batch scrape: the exposition parses and carries the
        // submission counter even while jobs are still in flight.
        std::string text;
        ASSERT_TRUE(client.metricsText(&text, &error)) << error;
        EXPECT_NE(text.find("# TYPE slacksim_jobs_submitted_total "
                            "counter"),
                  std::string::npos);
        EXPECT_NE(text.find("slacksim_jobs_submitted_total 3"),
                  std::string::npos);
        EXPECT_NE(text.find("slacksim_queue_wait_ms_bucket{le=\"+Inf"
                            "\"}"),
                  std::string::npos);

        ASSERT_TRUE(waitAllTerminal(client));

        // Coherence: every submitted job reached exactly one terminal
        // status, and both latency histograms saw every job.
        json::Value stats;
        ASSERT_TRUE(client.stats(&stats, &error)) << error;
        const json::Value &tel = stats.at("telemetry");
        EXPECT_EQ(tel.at("jobs_submitted").asUint(), 3u);
        EXPECT_EQ(tel.at("jobs_terminal").asUint(), 3u);
        EXPECT_EQ(tel.at("queue_wait_ms").at("count").asUint(), 3u);
        EXPECT_EQ(tel.at("run_duration_ms").at("count").asUint(), 3u);
        EXPECT_GT(tel.at("events_recorded").asUint(), 0u);

        // End-to-end correlation: the run report carries the job id
        // and the build stamp; the metrics CSV schema line and the
        // trace/profile filenames carry the same id.
        for (const std::uint64_t id : ids) {
            const std::string tag = "job-" + std::to_string(id);
            const std::string dir = harness.outRoot() + "/" + tag;
            const json::Value report =
                json::parse(slurp(dir + "/report.json"));
            EXPECT_EQ(report.at("job_id").asString(), tag);
            EXPECT_EQ(report.at("forensics").at("job_id").asString(),
                      tag);
            EXPECT_FALSE(report.at("generator")
                             .at("build")
                             .at("git")
                             .asString()
                             .empty());
            const std::string csv = slurp(dir + "/metrics.csv");
            EXPECT_NE(csv.find("job_id=" + tag), std::string::npos);
        }
        const std::string tag0 = "job-" + std::to_string(ids[0]);
        EXPECT_FALSE(slurp(harness.outRoot() + "/" + tag0 + "/" +
                           tag0 + ".trace.json")
                         .empty());
        EXPECT_FALSE(slurp(harness.outRoot() + "/" + tag0 + "/" +
                           tag0 + ".profile.folded")
                         .empty());
    }
    // The harness destructor drained and sealed the event log; the
    // lifecycle of every job must now read in order.
    const std::string events = slurp(out_root + "/server_events.jsonl");
    ASSERT_FALSE(events.empty());
    std::istringstream is(events);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(json::parse(line).at("schema").asString(),
              "slacksim.server_events.v1");
    std::map<std::uint64_t, std::vector<std::string>> perJob;
    std::uint64_t last_seq = 0;
    while (std::getline(is, line)) {
        const json::Value ev = json::parse(line);
        EXPECT_EQ(ev.at("seq").asUint(), last_seq + 1);
        last_seq = ev.at("seq").asUint();
        perJob[ev.at("job").asUint()].push_back(
            ev.at("event").asString());
    }
    for (const std::uint64_t id : ids) {
        ASSERT_TRUE(perJob.count(id)) << "job " << id;
        // Heartbeats may interleave; the five lifecycle transitions
        // must appear in order.
        const std::vector<std::string> want = {
            "submitted", "validated", "admitted", "started",
            "completed"};
        std::size_t next = 0;
        for (const std::string &name : perJob[id]) {
            if (next < want.size() && name == want[next])
                ++next;
        }
        EXPECT_EQ(next, want.size()) << "job " << id;
    }
}

TEST(ServeE2ETest, DrainShutdownFinishesQueuedJobs)
{
    ServerHarness harness("serve_e2e_drain", 8);
    Client client(harness.socket());
    ASSERT_TRUE(client.valid());

    // More jobs than can run at once (each reserves 5 of 8 threads,
    // so they serialize), then an immediate drain shutdown: every
    // queued job must still complete.
    std::string error;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t id = client.submit(
            specJson("pingpong", 4,
                     "\"seed\": " + std::to_string(i)),
            &error);
        ASSERT_NE(id, 0u) << error;
        ids.push_back(id);
    }
    ASSERT_TRUE(client.shutdown(true, &error)) << error;

    // The harness's server thread returns once the drain completes.
    // Verify outcome from the server object directly (the socket is
    // gone after shutdown).
    // Note: ~ServerHarness would also shut down; join here instead.
    const QueueStats stats = [&] {
        // Wait for run() to return via the harness destructor path:
        // poll the queue until idle, then check outcomes.
        while (!harness.server().queue().idle())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        return harness.server().queue().stats();
    }();
    EXPECT_EQ(stats.done, ids.size());
    EXPECT_EQ(stats.cancelled, 0u);
}
